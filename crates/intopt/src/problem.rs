//! The user-facing constraint problem: variable declarations, assertions,
//! satisfiability checking and optimization.

use crate::binsearch::{minimize, MinimizeOptions, MinimizeOutcome};
use crate::blast::{blast_with, Backend, EncoderOpt};
use crate::expr::{bool_structural_eq, BoolExpr, BoolVar, IntVar, SeenPairs};
use crate::triplet::TripletForm;
use optalloc_sat::{PbOp, SolveResult, Solver, SolverConfig};

/// A bounded-integer constraint problem: declare variables, assert Boolean
/// combinations of integer (in)equations, then [`solve`](IntProblem::solve)
/// or [`minimize`](IntProblem::minimize).
///
/// ```
/// use optalloc_intopt::{IntProblem, Backend};
///
/// let mut p = IntProblem::new();
/// let x = p.int_var(0, 100);
/// let y = p.int_var(0, 100);
/// p.assert((x.expr() + y.expr()).eq(10));
/// p.assert((x.expr() * y.expr()).ge(21));
/// let m = p.solve(Backend::PseudoBoolean).expect("satisfiable");
/// let (xv, yv) = (m.int(x), m.int(y));
/// assert_eq!(xv + yv, 10);
/// assert!(xv * yv >= 21);
/// ```
#[derive(Clone, Default)]
pub struct IntProblem {
    int_decls: Vec<(i64, i64)>,
    bool_decls: u32,
    asserts: Vec<BoolExpr>,
    pb_asserts: Vec<PbAssert>,
}

/// A direct pseudo-Boolean constraint: `(terms, op, bound)` with terms
/// `(literal expression, coefficient)`.
type PbAssert = (Vec<(BoolExpr, i64)>, PbOp, i64);

/// Concrete values for every declared variable, extracted from a SAT model.
#[derive(Clone, Debug, Default)]
pub struct Model {
    ints: Vec<i64>,
    bools: Vec<bool>,
}

impl Model {
    /// Value of an integer variable.
    pub fn int(&self, v: IntVar) -> i64 {
        self.ints[v.id as usize]
    }

    /// Value of a Boolean variable.
    pub fn bool(&self, v: BoolVar) -> bool {
        self.bools[v.id as usize]
    }
}

impl IntProblem {
    /// Creates an empty problem.
    pub fn new() -> IntProblem {
        IntProblem::default()
    }

    /// Declares an integer variable ranging over `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// If `lo > hi`.
    pub fn int_var(&mut self, lo: i64, hi: i64) -> IntVar {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let id = self.int_decls.len() as u32;
        self.int_decls.push((lo, hi));
        IntVar { id, lo, hi }
    }

    /// Declares a Boolean variable.
    pub fn bool_var(&mut self) -> BoolVar {
        let id = self.bool_decls;
        self.bool_decls += 1;
        BoolVar { id }
    }

    /// Asserts that `e` must hold.
    pub fn assert(&mut self, e: BoolExpr) {
        self.asserts.push(e);
    }

    /// Asserts the pseudo-Boolean constraint `Σ coefᵢ·⟦eᵢ⟧  op  bound`,
    /// where `⟦e⟧` is 1 when `e` holds. Used for cardinality constraints
    /// such as the one-hot allocation variables.
    pub fn assert_pb(&mut self, terms: Vec<(BoolExpr, i64)>, op: PbOp, bound: i64) {
        self.pb_asserts.push((terms, op, bound));
    }

    /// Number of assertions (for diagnostics).
    pub fn num_asserts(&self) -> usize {
        self.asserts.len() + self.pb_asserts.len()
    }

    /// Declared integer variable ranges, indexed by variable id. The blast
    /// API ([`crate::blast`]) takes this as its declaration table.
    pub fn int_decls(&self) -> &[(i64, i64)] {
        &self.int_decls
    }

    /// Structural equality: same declarations and the same assertions in
    /// the same order, compared node by node (expression identity is *not*
    /// required — two independently built copies of the same problem are
    /// structurally equal). This is the reuse gate for warm-started
    /// re-solves: a retained incremental solver's learned clauses are only
    /// sound for a request whose problem is structurally identical to the
    /// one that was encoded. Shared subgraphs are memoized, so the check is
    /// linear in the number of distinct node pairs.
    pub fn structurally_eq(&self, other: &IntProblem) -> bool {
        if self.int_decls != other.int_decls
            || self.bool_decls != other.bool_decls
            || self.asserts.len() != other.asserts.len()
            || self.pb_asserts.len() != other.pb_asserts.len()
        {
            return false;
        }
        let mut seen = SeenPairs::default();
        self.asserts
            .iter()
            .zip(&other.asserts)
            .all(|(a, b)| bool_structural_eq(a, b, &mut seen))
            && self
                .pb_asserts
                .iter()
                .zip(&other.pb_asserts)
                .all(|((ta, oa, ba), (tb, ob, bb))| {
                    oa == ob
                        && ba == bb
                        && ta.len() == tb.len()
                        && ta.iter().zip(tb).all(|((ea, ca), (eb, cb))| {
                            ca == cb && bool_structural_eq(ea, eb, &mut seen)
                        })
                })
    }

    /// Rewrites all assertions to triplet form (paper §5.1 step 1).
    pub fn triplet_form(&self) -> TripletForm {
        let mut tf = TripletForm::new();
        for a in &self.asserts {
            tf.assert(a);
        }
        for (terms, op, bound) in &self.pb_asserts {
            tf.assert_pb(terms, *op, *bound);
        }
        tf
    }

    /// Triplet form plus declaration ranges, ready for
    /// [`blast_with`](crate::blast_with). With `opt.narrowing` on, the form
    /// is interval-tightened (bounds flow *down* from asserted comparisons,
    /// not just up from leaves), decided comparisons fold to constants, and
    /// dead definitions are swept. The returned declaration table carries
    /// the narrowed input ranges and must be the one handed to the blaster —
    /// widths are only sound against the ranges actually asserted.
    pub fn prepare(&self, opt: &EncoderOpt) -> (TripletForm, Vec<(i64, i64)>) {
        let mut form = self.triplet_form();
        let mut decls = self.int_decls.clone();
        if opt.narrowing {
            form.optimize(&mut decls);
        }
        (form, decls)
    }

    pub(crate) fn extract_model(&self, solver: &Solver, bl: &crate::blast::Blast) -> Model {
        Model {
            ints: self
                .int_decls
                .iter()
                .enumerate()
                .map(|(id, &(lo, hi))| {
                    bl.int_value(
                        solver,
                        IntVar {
                            id: id as u32,
                            lo,
                            hi,
                        },
                    )
                })
                .collect(),
            bools: (0..self.bool_decls)
                .map(|id| bl.bool_value(solver, BoolVar { id }))
                .collect(),
        }
    }

    /// Decides satisfiability, returning a model if one exists.
    pub fn solve(&self, backend: Backend) -> Option<Model> {
        self.solve_with_budget(backend, None)
            .expect("no budget set")
    }

    /// Like [`solve`](IntProblem::solve) but aborts after `max_conflicts`
    /// conflicts, returning `Err(())` on abort.
    #[allow(clippy::result_unit_err)]
    pub fn solve_with_budget(
        &self,
        backend: Backend,
        max_conflicts: Option<u64>,
    ) -> Result<Option<Model>, ()> {
        self.solve_with_options(backend, max_conflicts, &EncoderOpt::default())
    }

    /// Like [`solve_with_budget`](IntProblem::solve_with_budget) with an
    /// explicit encoder-optimization configuration (ablation hook).
    #[allow(clippy::result_unit_err)]
    pub fn solve_with_options(
        &self,
        backend: Backend,
        max_conflicts: Option<u64>,
        opt: &EncoderOpt,
    ) -> Result<Option<Model>, ()> {
        let mut solver = Solver::new();
        solver.config.max_conflicts = max_conflicts;
        solver.config.preprocess = opt.preprocess;
        let (form, decls) = self.prepare(opt);
        let bl = blast_with(&form, &decls, &mut solver, backend, opt);
        if bl.trivially_unsat() {
            return Ok(None);
        }
        match solver.solve(&[]) {
            SolveResult::Sat => Ok(Some(self.extract_model(&solver, &bl))),
            SolveResult::Unsat => Ok(None),
            SolveResult::Unknown | SolveResult::Interrupted => Err(()),
        }
    }

    /// Like [`solve_with_options`](IntProblem::solve_with_options) but with
    /// a full [`SolverConfig`], which in particular carries the cooperative
    /// [`SolverConfig::interrupt`] flag — the hook a long-running service
    /// needs to cancel or time out a plain feasibility solve. Returns
    /// `Err(())` on budget exhaustion *or* interruption.
    #[allow(clippy::result_unit_err)]
    pub fn solve_with_solver_config(
        &self,
        backend: Backend,
        config: SolverConfig,
        opt: &EncoderOpt,
    ) -> Result<Option<Model>, ()> {
        let mut solver = Solver::new();
        solver.config = config;
        if !opt.preprocess {
            solver.config.preprocess = false;
        }
        let (form, decls) = self.prepare(opt);
        let bl = blast_with(&form, &decls, &mut solver, backend, opt);
        if bl.trivially_unsat() {
            return Ok(None);
        }
        match solver.solve(&[]) {
            SolveResult::Sat => Ok(Some(self.extract_model(&solver, &bl))),
            SolveResult::Unsat => Ok(None),
            SolveResult::Unknown | SolveResult::Interrupted => Err(()),
        }
    }

    /// Minimizes `cost` subject to the assertions via binary search
    /// (paper §5.2). See [`MinimizeOptions`] for backend/mode selection.
    pub fn minimize(&self, cost: IntVar, opts: &MinimizeOptions) -> MinimizeOutcome {
        minimize(self, cost, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::{BinSearchMode, MinimizeStatus};
    use crate::expr::IntExpr;

    fn both_backends() -> [Backend; 2] {
        [Backend::Cnf, Backend::PseudoBoolean]
    }

    #[test]
    fn linear_system_solves() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 20);
            let y = p.int_var(0, 20);
            p.assert((x.expr() + y.expr()).eq(15));
            p.assert((x.expr() - y.expr()).eq(3));
            let m = p.solve(backend).unwrap();
            assert_eq!(m.int(x), 9, "{backend:?}");
            assert_eq!(m.int(y), 6, "{backend:?}");
        }
    }

    #[test]
    fn nonlinear_product_constraint() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let x = p.int_var(1, 12);
            let y = p.int_var(1, 12);
            p.assert((x.expr() * y.expr()).eq(35));
            let m = p.solve(backend).unwrap();
            assert_eq!(m.int(x) * m.int(y), 35, "{backend:?}");
        }
    }

    #[test]
    fn negative_ranges_work() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let x = p.int_var(-10, 10);
            p.assert(x.expr().lt(0));
            p.assert((x.expr() * x.expr()).eq(49));
            let m = p.solve(backend).unwrap();
            assert_eq!(m.int(x), -7, "{backend:?}");
        }
    }

    #[test]
    fn infeasible_detected() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 5);
            p.assert(x.expr().ge(3));
            p.assert(x.expr().le(2));
            assert!(p.solve(backend).is_none(), "{backend:?}");
        }
    }

    #[test]
    fn implication_with_bool_guard() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let g = p.bool_var();
            let x = p.int_var(0, 10);
            p.assert(g.expr().implies(x.expr().eq(7)));
            p.assert(g.expr());
            let m = p.solve(backend).unwrap();
            assert!(m.bool(g));
            assert_eq!(m.int(x), 7, "{backend:?}");
        }
    }

    #[test]
    fn pb_cardinality_over_bools() {
        for backend in both_backends() {
            let mut p = IntProblem::new();
            let vars: Vec<_> = (0..5).map(|_| p.bool_var()).collect();
            let terms: Vec<_> = vars.iter().map(|v| (v.expr(), 1)).collect();
            p.assert_pb(terms, PbOp::Eq, 1);
            p.assert(vars[0].expr().not());
            p.assert(vars[1].expr().not());
            let m = p.solve(backend).unwrap();
            let count = vars.iter().filter(|v| m.bool(**v)).count();
            assert_eq!(count, 1, "{backend:?}");
            assert!(!m.bool(vars[0]) && !m.bool(vars[1]));
        }
    }

    #[test]
    fn minimize_simple_linear() {
        for backend in both_backends() {
            for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
                let mut p = IntProblem::new();
                let x = p.int_var(0, 50);
                let y = p.int_var(0, 50);
                let cost = p.int_var(0, 200);
                p.assert((x.expr() + y.expr()).ge(13));
                p.assert(x.expr().ge(2));
                p.assert(cost.expr().eq(x.expr() * 3 + y.expr() * 2));
                let opts = MinimizeOptions {
                    backend,
                    mode,
                    ..Default::default()
                };
                let out = p.minimize(cost, &opts);
                match out.status {
                    MinimizeStatus::Optimal { value, ref model } => {
                        // min 3x + 2y s.t. x+y≥13, x≥2 → x=2, y=11 → 28.
                        assert_eq!(value, 28, "{backend:?} {mode:?}");
                        assert_eq!(model.int(x), 2);
                        assert_eq!(model.int(y), 11);
                    }
                    ref s => panic!("unexpected {s:?} for {backend:?} {mode:?}"),
                }
                assert!(out.solve_calls >= 2);
                assert!(out.encode.bool_vars > 0);
            }
        }
    }

    #[test]
    fn minimize_nonlinear_objective() {
        // min x*x with x ≥ 4 over [-16, 16] ⇒ 16.
        for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
            let mut p = IntProblem::new();
            let x = p.int_var(-16, 16);
            let cost = p.int_var(0, 256);
            p.assert(cost.expr().eq(x.expr() * x.expr()));
            p.assert(x.expr().ge(4).or(x.expr().le(-6)));
            let out = p.minimize(
                cost,
                &MinimizeOptions {
                    mode,
                    ..Default::default()
                },
            );
            match out.status {
                MinimizeStatus::Optimal { value, ref model } => {
                    assert_eq!(value, 16, "{mode:?}");
                    assert_eq!(model.int(x), 4);
                }
                ref s => panic!("unexpected {s:?}"),
            }
        }
    }

    #[test]
    fn minimize_infeasible() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 5);
        let cost = p.int_var(0, 5);
        p.assert(x.expr().gt(10 - 4)); // x > 6 impossible in [0,5]
        p.assert(cost.expr().eq(x.expr()));
        let out = p.minimize(cost, &MinimizeOptions::default());
        assert!(matches!(out.status, MinimizeStatus::Infeasible));
    }

    #[test]
    fn minimize_already_tight() {
        // Optimum equals the lower bound of the cost range.
        let mut p = IntProblem::new();
        let cost = p.int_var(3, 40);
        p.assert(cost.expr().ge(0));
        let out = p.minimize(cost, &MinimizeOptions::default());
        match out.status {
            MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 3),
            ref s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn fresh_and_incremental_agree() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 30);
        let y = p.int_var(0, 30);
        let cost = p.int_var(0, 900);
        p.assert(cost.expr().eq(x.expr() * y.expr()));
        p.assert((x.expr() + y.expr()).eq(17));
        p.assert(x.expr().ge(1));
        p.assert(y.expr().ge(1));
        let v = |mode| {
            let out = p.minimize(
                cost,
                &MinimizeOptions {
                    mode,
                    ..Default::default()
                },
            );
            match out.status {
                MinimizeStatus::Optimal { value, .. } => value,
                ref s => panic!("unexpected {s:?}"),
            }
        };
        // min x(17−x) for x in 1..=16 is at the boundary: 16.
        assert_eq!(v(BinSearchMode::Fresh), 16);
        assert_eq!(v(BinSearchMode::Incremental), 16);
    }

    #[test]
    fn warm_start_upper_bound_preserves_optimum() {
        for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
            // min x+y s.t. x+y ≥ 9 ⇒ 9. Hints: exact, loose, and invalid.
            for hint in [Some(9), Some(30), Some(3), None] {
                let mut p = IntProblem::new();
                let x = p.int_var(0, 40);
                let y = p.int_var(0, 40);
                let cost = p.int_var(0, 80);
                p.assert((x.expr() + y.expr()).ge(9));
                p.assert(cost.expr().eq(x.expr() + y.expr()));
                let out = p.minimize(
                    cost,
                    &MinimizeOptions {
                        mode,
                        initial_upper: hint,
                        ..Default::default()
                    },
                );
                match out.status {
                    MinimizeStatus::Optimal { value, .. } => {
                        assert_eq!(value, 9, "{mode:?} hint {hint:?}")
                    }
                    ref s => panic!("unexpected {s:?} for {mode:?} hint {hint:?}"),
                }
            }
        }
    }

    #[test]
    fn warm_start_on_infeasible_problem_reports_infeasible() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 5);
        let cost = p.int_var(0, 5);
        p.assert(x.expr().ge(9 - 2)); // impossible
        p.assert(cost.expr().eq(x.expr()));
        let out = p.minimize(
            cost,
            &MinimizeOptions {
                initial_upper: Some(4),
                ..Default::default()
            },
        );
        assert!(matches!(out.status, MinimizeStatus::Infeasible));
    }

    #[test]
    fn sum_helper_builds_balanced_constraint() {
        let mut p = IntProblem::new();
        let xs: Vec<_> = (0..6).map(|_| p.int_var(0, 9)).collect();
        let total = IntExpr::sum(xs.iter().map(|v| v.expr()));
        p.assert(total.eq(42));
        let m = p.solve(Backend::PseudoBoolean).unwrap();
        let s: i64 = xs.iter().map(|&v| m.int(v)).sum();
        assert_eq!(s, 42);
    }
}
