#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `rayon`.
//!
//! Implements the tiny slice of the rayon API this workspace uses —
//! `into_par_iter().map(..).collect()` — with real `std::thread` fan-out.
//! Items are materialized eagerly, the mapped closure runs on
//! `available_parallelism()` scoped worker threads over contiguous chunks,
//! and results are reassembled in input order, so the observable behavior
//! (ordering, determinism) matches rayon's.

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Conversion into a (stub) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self`, materializing the items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range!(u32, u64, usize, i32, i64);

/// An eager "parallel" iterator over a materialized item vector.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item on scoped worker threads, preserving input
    /// order in the result.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.items.len().max(1));
        if workers <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let chunk = self.items.len().div_ceil(workers);
        // Split the input into owned chunks; each worker maps one chunk and
        // returns its results, which are reassembled in chunk order.
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mapped: Vec<R> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        ParIter { items: mapped }
    }

    /// Collects the items into any `FromIterator` container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum of the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_works() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|i: i32| format!("#{i}"))
            .collect();
        assert_eq!(out, vec!["#1", "#2", "#3"]);
    }
}
