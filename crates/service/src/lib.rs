//! # optalloc-service
//!
//! A **long-running allocation service** over the SAT-based optimizer: a
//! bounded job queue in front of a worker pool, canonical instance
//! fingerprinting fronting an LRU result/certificate cache, and
//! delta-driven warm-start re-solving.
//!
//! The paper solves one instance per invocation. A deployed allocator sees
//! a *stream* of instances, most of them small mutations of the previous
//! one (a WCET re-measured, a deadline tightened, a task added). This crate
//! exploits that structure in three layers, each sound on its own:
//!
//! 1. **Cache** — the [`Fingerprint`] is a content hash over the canonical
//!    (name-sorted, id-rewritten) model form, so resubmitting an instance —
//!    even with tasks/ECUs declared in a different order — returns the
//!    prior optimum *and certificate* with zero SAT calls. Hits re-check
//!    canonical equality, so hash collisions cannot produce wrong answers.
//! 2. **Warm engine** — each worker owns an
//!    [`optalloc::WarmEngine`]; a mutated instance re-solves with
//!    the previous optimum as a *validated* hint (probed, never assumed)
//!    and, when the formula is unchanged, with the retained incremental
//!    solver and its learned clauses.
//! 3. **Deltas** — [`Request::Delta`] applies typed mutations
//!    ([`optalloc::InstanceDelta`]) server-side, transactionally,
//!    against a fingerprint-addressed session, so clients ship edits, not
//!    instances.
//!
//! Jobs run under cooperative cancellation: every worker pins one
//! interrupt flag into its solvers; a per-job watchdog raises it on
//! timeout, [`Service::cancel`] raises it on demand, and graceful
//! [`Service::shutdown`] drains queued and in-flight jobs while rejecting
//! new submissions with a typed [`RejectReason::Draining`].
//!
//! The service is usable in-process ([`Service::handle`]) or over TCP with
//! newline-delimited JSON ([`serve`]); both speak the same
//! [`protocol`] types.

#![warn(missing_docs)]
// `submit`'s `Err` carries the full typed `Response` (rejection or
// resolution error) so callers forward it verbatim to the client; the
// large variant is cold and never on the solve path.
#![allow(clippy::result_large_err)]

pub mod cache;
pub mod fingerprint;
pub mod protocol;
pub mod server;

use crate::cache::{CachedResult, ResultCache};
use crate::fingerprint::{canonicalize, remap_allocation, Fingerprint};
use crate::protocol::{
    Instance, JobOutcome, JobResult, RejectReason, Request, Response, SearchSummary, WarmLabel,
};
use optalloc::{
    apply_deltas, CertificateReport, Objective, OptError, Optimizer, SolveOptions, Strategy,
    WarmEngine, WarmMode,
};
use optalloc_obs::{MetricsRegistry, PhaseTotals, DEFAULT_MS_BUCKETS};
pub use server::{serve, Server};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. Each owns a private warm-start engine, so warm
    /// re-solves chain best with `workers = 1` (the default): every job
    /// sees the previous job's state.
    pub workers: usize,
    /// Bounded queue depth for *waiting* jobs; submissions beyond it are
    /// rejected with [`RejectReason::QueueFull`]. `0` rejects everything —
    /// useful only for testing admission control.
    pub queue_capacity: usize,
    /// Default per-job wall-clock timeout (`None` = unlimited); a request
    /// may override it.
    pub default_timeout: Option<Duration>,
    /// Result-cache capacity in instances.
    pub cache_capacity: usize,
    /// Solver configuration applied to every job. Its `interrupt` field is
    /// ignored — the service installs per-worker flags.
    pub solve: SolveOptions,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            default_timeout: None,
            cache_capacity: 64,
            solve: SolveOptions::default(),
        }
    }
}

/// Handle to a submitted job (see [`Service::submit`] / [`Service::wait`]).
pub type JobId = u64;

/// A resolved, ready-to-solve job.
struct JobPayload {
    instance: Instance,
    objective: Objective,
    window: Option<(i64, i64)>,
    fingerprint: Fingerprint,
    timeout: Option<Duration>,
}

struct JobState {
    payload: Option<JobPayload>,
    result: Option<Response>,
    /// The executing worker's interrupt flag, present while running.
    running: Option<Arc<AtomicBool>>,
    /// Raised by the watchdog or [`Service::cancel`]; distinguishes a
    /// timeout/cancel abort from a conflict-budget abort.
    timed_out: Arc<AtomicBool>,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobState>,
    next_id: JobId,
    draining: bool,
    inflight: usize,
}

struct Session {
    instance: Instance,
    objective: Objective,
}

#[derive(Default)]
struct Sessions {
    by_fp: HashMap<Fingerprint, Session>,
    last: Option<Fingerprint>,
}

// ----------------------------------------------------------------------
// Watchdog
// ----------------------------------------------------------------------

struct Watch {
    deadline: Instant,
    interrupt: Arc<AtomicBool>,
    timed_out: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

#[derive(Default)]
struct WatchdogState {
    watches: Vec<Watch>,
    stop: bool,
}

/// One thread raising per-job interrupt flags at their deadlines.
struct Watchdog {
    state: Mutex<WatchdogState>,
    cv: Condvar,
}

impl Watchdog {
    fn run(&self) {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.stop {
                return;
            }
            let now = Instant::now();
            st.watches.retain(|w| {
                if w.done.load(Ordering::Relaxed) {
                    return false;
                }
                if w.deadline <= now {
                    w.timed_out.store(true, Ordering::Relaxed);
                    w.interrupt.store(true, Ordering::Relaxed);
                    return false;
                }
                true
            });
            let next = st.watches.iter().map(|w| w.deadline).min();
            st = match next {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    self.cv.wait_timeout(st, wait).unwrap().0
                }
                None => self.cv.wait(st).unwrap(),
            };
        }
    }

    fn arm(&self, watch: Watch) {
        self.state.lock().unwrap().watches.push(watch);
        self.cv.notify_all();
    }

    fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.cv.notify_all();
    }
}

/// Disarms the watch on drop (the job finished on its own).
struct WatchGuard<'a> {
    watchdog: &'a Watchdog,
    done: Arc<AtomicBool>,
}

impl Drop for WatchGuard<'_> {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        self.watchdog.cv.notify_all();
    }
}

// ----------------------------------------------------------------------
// Service
// ----------------------------------------------------------------------

struct Shared {
    config: ServiceConfig,
    state: Mutex<QueueState>,
    job_available: Condvar,
    job_done: Condvar,
    cache: Mutex<ResultCache>,
    sessions: Mutex<Sessions>,
    watchdog: Watchdog,
    /// Search-engine counters accumulated over every solved job (cache
    /// hits contribute nothing) — reported by [`Response::Status`].
    search_totals: Mutex<SearchSummary>,
    /// Span-derived phase times accumulated over every solved job —
    /// reported by [`Response::Status`].
    phase_totals: Mutex<PhaseTotals>,
    /// Service telemetry (job counters, cache hits, per-job latency
    /// histogram) — snapshotted by [`Request::Metrics`].
    metrics: MetricsRegistry,
}

/// The long-running allocation service (see the crate docs).
pub struct Service {
    shared: Arc<Shared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Service {
    /// Starts the worker pool (and the timeout watchdog) immediately.
    pub fn new(config: ServiceConfig) -> Service {
        let workers = config.workers.max(1);
        let cache_capacity = config.cache_capacity;
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState::default()),
            job_available: Condvar::new(),
            job_done: Condvar::new(),
            cache: Mutex::new(ResultCache::new(cache_capacity)),
            sessions: Mutex::new(Sessions::default()),
            watchdog: Watchdog {
                state: Mutex::new(WatchdogState::default()),
                cv: Condvar::new(),
            },
            search_totals: Mutex::new(SearchSummary::default()),
            phase_totals: Mutex::new(PhaseTotals::default()),
            metrics: MetricsRegistry::new(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || shared.watchdog.run()));
        }
        Service {
            shared,
            threads: Mutex::new(threads),
        }
    }

    /// Handles one request to completion — the in-process equivalent of
    /// one wire round-trip. Solve/Delta requests block until the job
    /// finishes (or is rejected).
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Status => {
                let st = self.shared.state.lock().unwrap();
                Response::Status {
                    queued: st.queue.len(),
                    inflight: st.inflight,
                    draining: st.draining,
                    cached: self.shared.cache.lock().unwrap().len(),
                    search: *self.shared.search_totals.lock().unwrap(),
                    phases: *self.shared.phase_totals.lock().unwrap(),
                }
            }
            Request::Metrics => Response::Metrics {
                snapshot: self.shared.metrics.snapshot(),
            },
            Request::Shutdown => {
                self.begin_drain();
                Response::ShuttingDown
            }
            req => match self.submit(req) {
                Ok(id) => self.wait(id),
                Err(resp) => resp,
            },
        }
    }

    /// Enqueues a Solve/Delta request without blocking; `Err` carries the
    /// immediate response (rejection or resolution error). Use
    /// [`Service::wait`] to collect the result.
    pub fn submit(&self, request: Request) -> Result<JobId, Response> {
        let payload = self.resolve(request).map_err(|message| {
            // Resolution failures are client errors, not queue rejections.
            Response::Error { message }
        })?;
        let mut st = self.shared.state.lock().unwrap();
        if st.draining {
            return Err(Response::Rejected {
                reason: RejectReason::Draining,
            });
        }
        if st.queue.len() >= self.shared.config.queue_capacity {
            return Err(Response::Rejected {
                reason: RejectReason::QueueFull,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobState {
                payload: Some(payload),
                result: None,
                running: None,
                timed_out: Arc::new(AtomicBool::new(false)),
            },
        );
        st.queue.push_back(id);
        self.shared.job_available.notify_one();
        Ok(id)
    }

    /// Blocks until job `id` completes and returns (and forgets) its
    /// response.
    pub fn wait(&self, id: JobId) -> Response {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            match st.jobs.get_mut(&id) {
                None => {
                    return Response::Error {
                        message: format!("unknown job id {id}"),
                    }
                }
                Some(job) => {
                    if let Some(resp) = job.result.take() {
                        st.jobs.remove(&id);
                        return resp;
                    }
                }
            }
            st = self.shared.job_done.wait(st).unwrap();
        }
    }

    /// Cancels a job: a queued job is withdrawn, a running job's interrupt
    /// flag is raised (it finishes with [`JobOutcome::Timeout`]). Returns
    /// `false` when the job is unknown or already finished.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        let Some(job) = st.jobs.get(&id) else {
            return false;
        };
        if job.result.is_some() {
            return false;
        }
        if let Some(flag) = &job.running {
            job.timed_out.store(true, Ordering::Relaxed);
            flag.store(true, Ordering::Relaxed);
            return true;
        }
        // Still queued: withdraw it without running anything.
        let job = st.jobs.get_mut(&id).unwrap();
        let payload = job.payload.take().expect("queued job has a payload");
        job.result = Some(Response::Result(JobResult {
            fingerprint: payload.fingerprint.to_string(),
            outcome: JobOutcome::Timeout {
                incumbent_cost: None,
            },
            cached: false,
            warm: WarmLabel::Cold,
            solve_calls: 0,
            conflicts: 0,
            solve_ms: 0,
            search: SearchSummary::default(),
            phases: PhaseTotals::default(),
        }));
        st.queue.retain(|&q| q != id);
        self.shared.job_done.notify_all();
        true
    }

    /// The verified certificate cached for a fingerprint, when the solve
    /// was certified (in-process only — certificates are megabytes of DRAT
    /// and never cross the wire).
    pub fn certificate(&self, fingerprint: &str) -> Option<CertificateReport> {
        let fp: Fingerprint = fingerprint.parse().ok()?;
        self.shared
            .cache
            .lock()
            .unwrap()
            .get(&fp)
            .and_then(|c| c.certificate.clone())
    }

    /// Marks the service as draining: new submissions are rejected, queued
    /// and in-flight jobs still complete. Non-blocking; pair with
    /// [`Service::shutdown`] to wait for the drain.
    pub fn begin_drain(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.draining = true;
        // Wake idle workers so they can observe the drain and exit.
        self.shared.job_available.notify_all();
    }

    /// Graceful shutdown: drains queued and in-flight jobs, then joins the
    /// workers and the watchdog. Idempotent.
    pub fn shutdown(&self) {
        self.begin_drain();
        {
            let mut st = self.shared.state.lock().unwrap();
            while !st.queue.is_empty() || st.inflight > 0 {
                st = self.shared.job_done.wait(st).unwrap();
            }
        }
        self.shared.watchdog.stop();
        for t in self.threads.lock().unwrap().drain(..) {
            t.join().expect("service thread panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Service {
    /// Turns a wire request into a ready-to-run payload: validates the
    /// instance, resolves delta bases against the session map and applies
    /// the mutation batch transactionally.
    fn resolve(&self, request: Request) -> Result<JobPayload, String> {
        let (instance, objective, window, timeout_ms) = match request {
            Request::Solve {
                instance,
                objective,
                timeout_ms,
            } => {
                instance.validate()?;
                (instance, objective, None, timeout_ms)
            }
            Request::Delta {
                base,
                ops,
                objective,
                timeout_ms,
            } => {
                let sessions = self.shared.sessions.lock().unwrap();
                let fp = match base {
                    Some(s) => s.parse::<Fingerprint>()?,
                    None => sessions.last.ok_or("no instance has been solved yet")?,
                };
                let session = sessions
                    .by_fp
                    .get(&fp)
                    .ok_or_else(|| format!("unknown base fingerprint {fp}"))?;
                let mut instance = session.instance.clone();
                let objective = objective.unwrap_or_else(|| session.objective.clone());
                let window = apply_deltas(&instance.arch, &mut instance.tasks, &ops)
                    .map_err(|e| e.to_string())?;
                let window = match (window.lower, window.upper) {
                    (None, None) => None,
                    (lo, hi) => Some((lo.unwrap_or(i64::MIN), hi.unwrap_or(i64::MAX))),
                };
                (instance, objective, window, timeout_ms)
            }
            Request::Status | Request::Metrics | Request::Shutdown => {
                unreachable!("handled before resolution")
            }
        };
        let fingerprint =
            fingerprint::fingerprint(&instance, &objective, &self.shared.config.solve, window);
        Ok(JobPayload {
            instance,
            objective,
            window,
            fingerprint,
            timeout: timeout_ms
                .map(Duration::from_millis)
                .or(self.shared.config.default_timeout),
        })
    }
}

// ----------------------------------------------------------------------
// Worker
// ----------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    // One interrupt flag for the worker's whole life, pinned into every
    // solver its engine creates; it is RESET before each job (replacing
    // the Arc would not reach the engine's retained solvers).
    let interrupt = Arc::new(AtomicBool::new(false));
    let mut solve_opts = shared.config.solve.clone();
    solve_opts.interrupt = Some(Arc::clone(&interrupt));
    let mut engine = WarmEngine::new(solve_opts.minimize_options());

    loop {
        let (id, payload, timed_out) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    let payload = job.payload.take().expect("queued job has a payload");
                    job.running = Some(Arc::clone(&interrupt));
                    let timed_out = Arc::clone(&job.timed_out);
                    st.inflight += 1;
                    break (id, payload, timed_out);
                }
                if st.draining {
                    return;
                }
                st = shared.job_available.wait(st).unwrap();
            }
        };

        interrupt.store(false, Ordering::Relaxed);
        // A panicking solve (checked-mode invariant assertion, encoder bug)
        // must not take the worker down with the job still marked inflight
        // — `wait` would block forever. Convert the panic into a job error
        // and discard the engine: its retained solvers may be mid-mutation.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &mut engine, &solve_opts, &payload, &timed_out)
        }))
        .unwrap_or_else(|panic| {
            engine = WarmEngine::new(solve_opts.minimize_options());
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Response::Result(JobResult {
                fingerprint: payload.fingerprint.to_string(),
                outcome: JobOutcome::Error {
                    message: format!("solver panicked: {message}"),
                },
                cached: false,
                warm: WarmLabel::Cold,
                solve_calls: 0,
                conflicts: 0,
                solve_ms: 0,
                search: SearchSummary::default(),
                phases: PhaseTotals::default(),
            })
        });

        let mut st = shared.state.lock().unwrap();
        if let Some(job) = st.jobs.get_mut(&id) {
            job.running = None;
            job.result = Some(response);
        }
        st.inflight -= 1;
        drop(st);
        shared.job_done.notify_all();
    }
}

fn run_job(
    shared: &Shared,
    engine: &mut WarmEngine,
    solve_opts: &SolveOptions,
    payload: &JobPayload,
    timed_out: &Arc<AtomicBool>,
) -> Response {
    let start = Instant::now();
    let fp = payload.fingerprint;

    // 1. Cache: a hit answers with zero SAT calls. Canonical equality is
    // re-checked (hash collisions degrade to misses), and the stored
    // allocation is remapped into the submitted instance's id space.
    if let Some(hit) = shared.cache.lock().unwrap().get(&fp) {
        if canonicalize(&hit.instance).instance == canonicalize(&payload.instance).instance {
            let mut result = hit.result.clone();
            let remapped = match &result.outcome {
                JobOutcome::Optimal {
                    cost,
                    allocation,
                    certified,
                } => remap_allocation(allocation, &hit.instance, &payload.instance).map(|a| {
                    JobOutcome::Optimal {
                        cost: *cost,
                        allocation: a,
                        certified: *certified,
                    }
                }),
                other => Some(other.clone()),
            };
            if let Some(outcome) = remapped {
                result.outcome = outcome;
                result.cached = true;
                result.warm = WarmLabel::Cache;
                result.solve_calls = 0;
                result.conflicts = 0;
                result.solve_ms = start.elapsed().as_millis() as u64;
                result.search = SearchSummary::default();
                result.phases = PhaseTotals::default();
                shared.metrics.counter("service.cache_hits").inc();
                return Response::Result(result);
            }
        }
    }

    // 2. Solve. The watchdog arms only for jobs with a deadline.
    let _guard = payload.timeout.map(|t| {
        let done = Arc::new(AtomicBool::new(false));
        shared.watchdog.arm(Watch {
            deadline: Instant::now() + t,
            interrupt: solve_opts
                .interrupt
                .clone()
                .expect("worker options carry the interrupt flag"),
            timed_out: Arc::clone(timed_out),
            done: Arc::clone(&done),
        });
        WatchGuard {
            watchdog: &shared.watchdog,
            done,
        }
    });

    let optimizer = Optimizer::new(&payload.instance.arch, &payload.instance.tasks)
        .with_options(solve_opts.clone());
    // Portfolio/window strategies solve cold (a retained solver cannot be
    // raced); the single-search default goes through the warm engine, as
    // does any job with a cost window (the portfolio API has none).
    let use_engine = matches!(solve_opts.strategy, Strategy::Single) || payload.window.is_some();
    let solved = if use_engine {
        optimizer.minimize_warm(&payload.objective, engine, payload.window)
    } else {
        optimizer
            .minimize(&payload.objective)
            .map(|r| (r, WarmMode::Cold))
    };

    let solve_ms = start.elapsed().as_millis() as u64;
    let (outcome, warm, solve_calls, conflicts, search, phases, certificate) = match solved {
        Ok((report, mode)) => {
            let warm = match mode {
                WarmMode::Cold => WarmLabel::Cold,
                WarmMode::Seeded { .. } => WarmLabel::Seeded,
                WarmMode::Reused { .. } => WarmLabel::Reused,
            };
            (
                JobOutcome::Optimal {
                    cost: report.cost,
                    allocation: report.solution.allocation.clone(),
                    certified: report.certificate.is_some(),
                },
                warm,
                report.solve_calls,
                report.stats.conflicts,
                SearchSummary::from_stats(&report.stats),
                report.phases,
                report.certificate,
            )
        }
        Err(OptError::Infeasible) => (
            JobOutcome::Infeasible,
            WarmLabel::Cold,
            0,
            0,
            SearchSummary::default(),
            PhaseTotals::default(),
            None,
        ),
        Err(OptError::Budget { incumbent }) => {
            let incumbent_cost = incumbent.map(|(v, _)| v);
            let outcome = if timed_out.load(Ordering::Relaxed) {
                JobOutcome::Timeout { incumbent_cost }
            } else {
                JobOutcome::Budget { incumbent_cost }
            };
            (
                outcome,
                WarmLabel::Cold,
                0,
                0,
                SearchSummary::default(),
                PhaseTotals::default(),
                None,
            )
        }
        Err(e) => (
            JobOutcome::Error {
                message: e.to_string(),
            },
            WarmLabel::Cold,
            0,
            0,
            SearchSummary::default(),
            PhaseTotals::default(),
            None,
        ),
    };
    shared.search_totals.lock().unwrap().absorb(&search);
    shared.phase_totals.lock().unwrap().absorb(&phases);
    shared.metrics.counter("service.jobs").inc();
    shared
        .metrics
        .counter(match &outcome {
            JobOutcome::Optimal { .. } => "service.jobs_optimal",
            JobOutcome::Infeasible => "service.jobs_infeasible",
            JobOutcome::Budget { .. } => "service.jobs_budget",
            JobOutcome::Timeout { .. } => "service.jobs_timeout",
            JobOutcome::Error { .. } => "service.jobs_error",
        })
        .inc();
    shared.metrics.counter("service.conflicts").add(conflicts);
    shared
        .metrics
        .histogram("service.job_ms", DEFAULT_MS_BUCKETS)
        .observe(solve_ms as f64);

    let result = JobResult {
        fingerprint: fp.to_string(),
        outcome,
        cached: false,
        warm,
        solve_calls,
        conflicts,
        solve_ms,
        search,
        phases,
    };

    // 3. Session bookkeeping: the instance is addressable for future
    // deltas whatever the verdict; only terminal, deterministic verdicts
    // enter the result cache.
    {
        let mut sessions = shared.sessions.lock().unwrap();
        sessions.by_fp.insert(
            fp,
            Session {
                instance: payload.instance.clone(),
                objective: payload.objective.clone(),
            },
        );
        sessions.last = Some(fp);
    }
    if matches!(
        result.outcome,
        JobOutcome::Optimal { .. } | JobOutcome::Infeasible
    ) {
        shared.cache.lock().unwrap().put(
            fp,
            CachedResult {
                result: result.clone(),
                instance: payload.instance.clone(),
                certificate,
            },
        );
    }
    Response::Result(result)
}
