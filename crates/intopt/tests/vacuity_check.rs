//! Scratch test (review only): is the window-claim check vacuous for
//! incremental traces because the guard-closing clause is logged as input?

use optalloc_intopt::{BinSearchMode, CostProber, IntProblem, MinimizeOptions, Probe};

#[test]
fn claim_check_vacuity_probe() {
    let mut p = IntProblem::new();
    let x = p.int_var(0, 100);
    p.assert(x.expr().ge(7));
    let opts = MinimizeOptions {
        certify: true,
        mode: BinSearchMode::Incremental,
        ..MinimizeOptions::default()
    };
    let mut prober = CostProber::new(&p, x, &opts);
    // First probe is SAT: its window [7,100] is NOT refuted.
    assert!(matches!(prober.probe(Some((7, 100))), Probe::Sat { .. }));
    let proof = prober.take_proof().expect("trace");
    assert!(proof.windows.is_empty(), "no window was certified");
    let checked = optalloc_sat::check_proof(&proof.log).expect("trace checks");
    // Find the guard-closing unit input clause(s) in the trace.
    let mut closing_units = vec![];
    for step in proof.log.steps() {
        if let optalloc_sat::ProofStep::InputClause(lits) = step {
            if lits.len() == 1 {
                closing_units.push(lits[0]);
            }
        }
    }
    // The SAT probe's guard closure is an input unit; proves_clause accepts it,
    // so a fabricated CertifiedWindow{lo:7, hi:100, claim:[¬g]} would verify
    // even though the window is satisfiable.
    let vacuous = closing_units.iter().any(|&l| checked.proves_clause(&[l]));
    println!("closing unit inputs: {}", closing_units.len());
    println!("proves_clause accepts un-derived guard closure: {vacuous}");
    assert!(vacuous, "if this fails, the claim check is NOT vacuous");
}
