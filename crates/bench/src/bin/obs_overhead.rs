//! `obs-overhead` — measure what observability costs the solver.
//!
//! Runs the same minimization twice per repetition, once with the default
//! disabled [`Obs`] handle and once with a live one (spans + metrics +
//! a progress hook throttled at the default cadence), keeps the fastest
//! repetition of each, and prints the ratio. Exits 1 when the enabled run
//! is more than `OPTALLOC_OBS_MAX_OVERHEAD_PCT` percent slower (default
//! 5 — the CI `obs-smoke` gate; the design target in
//! `docs/OBSERVABILITY.md` is ≤2% for the *disabled* path, which this
//! enabled-vs-disabled bound dominates).
//!
//! Environment knobs:
//!
//! - `OPTALLOC_OBS_SIZE=20` — task count of the `table3-t<N>` instance
//!   (default 12, CI-sized);
//! - `OPTALLOC_OBS_REPS=5` — repetitions per variant (default 3);
//! - `OPTALLOC_OBS_MAX_OVERHEAD_PCT=5` — failure threshold.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_model::MediumId;
use optalloc_obs::{Obs, ProgressHook};
use optalloc_workloads::task_scaling;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn run_once(n: usize, obs: Obs, progress: Option<ProgressHook>) -> f64 {
    let w = task_scaling(n);
    let opts = SolveOptions {
        max_conflicts: Some(3_000_000),
        max_slot: 24,
        obs,
        progress,
        ..Default::default()
    };
    let start = Instant::now();
    let r = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts)
        .minimize(&Objective::TokenRotationTime(MediumId(0)))
        .expect("canonical instance solves");
    std::hint::black_box(r.cost);
    start.elapsed().as_secs_f64()
}

fn main() -> ExitCode {
    let n: usize = env_or("OPTALLOC_OBS_SIZE", 12);
    let reps: usize = env_or("OPTALLOC_OBS_REPS", 3).max(1);
    let max_pct: f64 = env_or("OPTALLOC_OBS_MAX_OVERHEAD_PCT", 5.0);

    let events = Arc::new(AtomicU64::new(0));
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    for _ in 0..reps {
        // Interleave the variants so clock drift hits both equally.
        disabled = disabled.min(run_once(n, Obs::disabled(), None));
        let counter = Arc::clone(&events);
        enabled = enabled.min(run_once(
            n,
            Obs::enabled(),
            Some(ProgressHook::new(move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            })),
        ));
    }

    let overhead_pct = (enabled / disabled - 1.0) * 100.0;
    println!(
        "table3-t{n}, best of {reps}: disabled {disabled:.3}s, enabled \
         {enabled:.3}s ({} progress events) -> overhead {overhead_pct:+.2}% \
         (limit {max_pct}%)",
        events.load(Ordering::Relaxed),
    );
    if overhead_pct > max_pct {
        eprintln!("FAIL: observability overhead above {max_pct}%");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
