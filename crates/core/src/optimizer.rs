//! The top-level optimizer: encode → `BIN_SEARCH` → decode → re-validate.

// `OptError::Budget` deliberately carries the best incumbent allocation so
// callers can use a partial result; errors are rare and never on a hot
// path, so the large `Err` variant is a fair trade for the simple API.
#![allow(clippy::result_large_err)]

use crate::decode::decode;
use crate::encode::objective::{variable_slot_media, ObjectiveError};
use crate::encode::Encoding;
use crate::options::{Objective, SolveOptions, Strategy};
use optalloc_analysis::{
    bus_load_permille, ecu_utilization_permille, sum_trt, token_rotation_time,
    utilization_minmax_spread_permille, validate, AnalysisConfig, Report,
};
use optalloc_intopt::{
    Certificate, CertificateSummary, EncodeStats, MinimizeStatus, WarmEngine, WarmMode,
};
use optalloc_model::{Allocation, Architecture, TaskSet};
use optalloc_obs::{Phase, PhaseTotals};
use optalloc_portfolio::{
    minimize_portfolio, minimize_window_search, PortfolioOptions, WorkerReport,
};
use optalloc_sat::{SolverConfig, SolverStats};
use std::time::{Duration, Instant};

/// A feasible allocation together with its independent analysis report.
#[derive(Clone, Debug)]
pub struct AllocationSolution {
    /// The decoded allocation `(Π, Φ, Γ)` plus chosen slot tables.
    pub allocation: Allocation,
    /// The analysis report re-validating the allocation (always feasible).
    pub report: Report,
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeReport {
    /// The optimal allocation.
    pub solution: AllocationSolution,
    /// The minimal objective value.
    pub cost: i64,
    /// Propositional encoding size — the paper's "Var." / "Lit." columns.
    pub encode: EncodeStats,
    /// Number of `SOLVE` calls the binary search issued.
    pub solve_calls: u32,
    /// Aggregated solver statistics (summed over all portfolio workers).
    pub stats: SolverStats,
    /// Wall-clock time of the full run (encode + search + decode).
    pub wall: Duration,
    /// Per-phase wall-time breakdown. `encode_ms` and `search_ms` are the
    /// same numbers as `encode.encode_ms` and `stats.solve_ms` — all three
    /// are fed by the stopwatches that record the trace spans, so a trace
    /// written by [`optalloc_obs::Obs::write_trace`] sums to exactly these
    /// values.
    pub phases: PhaseTotals,
    /// Per-worker execution records when [`Strategy::Portfolio`] or
    /// [`Strategy::WindowSearch`] ran; empty under [`Strategy::Single`].
    pub workers: Vec<WorkerReport>,
    /// The verified optimality certificate when
    /// [`SolveOptions::certify`](crate::SolveOptions::certify) was set.
    /// Verification already succeeded by the time the report exists; the
    /// certificate is retained so callers can re-check it or dump the DRAT
    /// traces (`--proof` in the CLI).
    pub certificate: Option<CertificateReport>,
}

/// A checked optimality certificate attached to an [`OptimizeReport`].
#[derive(Clone, Debug)]
pub struct CertificateReport {
    /// Checker aggregates (proof steps, verified additions, windows).
    pub summary: CertificateSummary,
    /// The full certificate: witness model plus per-solver DRAT traces.
    pub certificate: Certificate,
}

/// Why an optimization run produced no allocation.
#[derive(Debug)]
pub enum OptError {
    /// No allocation satisfies the constraints.
    Infeasible,
    /// The conflict budget ran out; carries the best incumbent if any probe
    /// succeeded before the abort.
    Budget {
        /// Best (cost, solution) found before giving up.
        incumbent: Option<(i64, AllocationSolution)>,
    },
    /// Objective incompatible with the architecture.
    Objective(ObjectiveError),
    /// Internal consistency failure: the solver's allocation did not pass
    /// independent re-validation (a bug, never expected).
    ValidationFailed(Report),
    /// Certification was requested but the optimality certificate failed
    /// verification — a rejected DRAT trace, a coverage gap below the
    /// optimum, or an objective value the independent analysis does not
    /// reproduce. Indicates a solver or encoder bug, never expected.
    CertificationFailed {
        /// Human-readable description of the failed check.
        reason: String,
    },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Infeasible => write!(f, "no feasible allocation exists"),
            OptError::Budget { incumbent } => write!(
                f,
                "conflict budget exhausted ({} incumbent)",
                if incumbent.is_some() { "with" } else { "no" }
            ),
            OptError::Objective(e) => write!(f, "objective error: {e}"),
            OptError::ValidationFailed(r) => {
                write!(
                    f,
                    "solver allocation failed re-validation: {:?}",
                    r.violations
                )
            }
            OptError::CertificationFailed { reason } => {
                write!(f, "optimality certificate rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for OptError {}

/// The SAT-based optimal allocator (the paper's contribution, end to end).
///
/// ```
/// use optalloc::{Optimizer, Objective};
/// use optalloc_model::{Architecture, Ecu, EcuId, Medium, Task, TaskId, TaskSet};
///
/// let mut arch = Architecture::new();
/// let p0 = arch.push_ecu(Ecu::new("p0"));
/// let p1 = arch.push_ecu(Ecu::new("p1"));
/// arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
///
/// let mut tasks = TaskSet::new();
/// tasks.push(Task::new("a", 20, 20, vec![(p0, 8), (p1, 8)]));
/// tasks.push(Task::new("b", 20, 20, vec![(p0, 8), (p1, 8)]));
/// tasks.push(Task::new("c", 20, 19, vec![(p0, 8), (p1, 8)]));
///
/// // Three 40%-tasks cannot share one ECU; the optimizer must split them.
/// let result = Optimizer::new(&arch, &tasks)
///     .minimize(&Objective::MaxUtilizationPermille)
///     .unwrap();
/// assert!(result.solution.report.is_feasible());
/// assert_eq!(result.cost, 800); // 2 tasks × 40% on the fuller ECU
/// ```
pub struct Optimizer<'a> {
    arch: &'a Architecture,
    tasks: &'a TaskSet,
    opts: SolveOptions,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer with default options.
    pub fn new(arch: &'a Architecture, tasks: &'a TaskSet) -> Optimizer<'a> {
        Optimizer {
            arch,
            tasks,
            opts: SolveOptions::default(),
        }
    }

    /// Replaces the solve options (builder style).
    pub fn with_options(mut self, opts: SolveOptions) -> Optimizer<'a> {
        self.opts = opts;
        self
    }

    /// The analysis configuration consistent with the encoder settings; use
    /// it for any external re-validation.
    pub fn analysis_config(&self) -> AnalysisConfig {
        AnalysisConfig {
            task_jitter: self.opts.task_jitter,
            gateway_service: self.opts.gateway_service,
        }
    }

    fn check(&self, alloc: Allocation) -> Result<AllocationSolution, OptError> {
        let report = validate(self.arch, self.tasks, &alloc, &self.analysis_config());
        if report.is_feasible() {
            Ok(AllocationSolution {
                allocation: alloc,
                report,
            })
        } else {
            Err(OptError::ValidationFailed(report))
        }
    }

    /// Recomputes the objective value of a decoded allocation through the
    /// independent analysis layer — no encoder artifacts involved, so a
    /// match between this and the solver's claimed optimum closes the
    /// encoder out of the trusted base.
    fn recompute_objective(&self, objective: &Objective, alloc: &Allocation) -> i64 {
        match objective {
            Objective::TokenRotationTime(m) => {
                token_rotation_time(self.arch, alloc, *m).unwrap_or(0) as i64
            }
            Objective::SumTokenRotationTimes => sum_trt(self.arch, alloc) as i64,
            Objective::BusLoadPermille(m) => {
                bus_load_permille(self.arch, self.tasks, alloc, *m) as i64
            }
            Objective::MaxUtilizationPermille => {
                ecu_utilization_permille(self.tasks, alloc, self.arch.num_ecus())
                    .into_iter()
                    .max()
                    .unwrap_or(0) as i64
            }
            Objective::UtilizationSpreadPermille => {
                utilization_minmax_spread_permille(self.tasks, alloc, self.arch.num_ecus()) as i64
            }
            Objective::Feasibility => 0,
        }
    }

    /// Verifies the optimality certificate end to end: DRAT traces checked
    /// and windows covering everything below the optimum
    /// ([`Certificate::verify`]), plus the independent witness replay —
    /// the decoded allocation's objective value, recomputed by the
    /// analysis layer, must equal the claimed optimum. (Feasibility of the
    /// witness was already re-validated by [`Optimizer::check`].)
    fn certify(
        &self,
        objective: &Objective,
        value: i64,
        alloc: &Allocation,
        certificate: Option<Certificate>,
    ) -> Result<CertificateReport, OptError> {
        let certificate = certificate.ok_or_else(|| OptError::CertificationFailed {
            reason: "the search produced no certificate".into(),
        })?;
        let summary = certificate
            .verify()
            .map_err(|e| OptError::CertificationFailed {
                reason: e.to_string(),
            })?;
        let recomputed = self.recompute_objective(objective, alloc);
        if recomputed != value {
            return Err(OptError::CertificationFailed {
                reason: format!(
                    "claimed optimum {value}, but independent analysis recomputes \
                     the witness objective as {recomputed}"
                ),
            });
        }
        Ok(CertificateReport {
            summary,
            certificate,
        })
    }

    /// Finds any feasible allocation (no objective), or proves none exists.
    pub fn find_feasible(&self) -> Result<AllocationSolution, OptError> {
        let enc = Encoding::build(self.arch, self.tasks, &self.opts, &[]);
        if enc.infeasible {
            return Err(OptError::Infeasible);
        }
        let mut config = SolverConfig {
            max_conflicts: self.opts.max_conflicts,
            interrupt: self.opts.interrupt.clone(),
            ..SolverConfig::default()
        };
        self.opts.search.configure(&mut config);
        config.paranoid = self.opts.paranoid;
        match enc.problem.solve_with_solver_config(
            self.opts.backend,
            config,
            &self.opts.encoder_opt,
        ) {
            Err(()) => Err(OptError::Budget { incumbent: None }),
            Ok(None) => Err(OptError::Infeasible),
            Ok(Some(model)) => self.check(decode(&enc, &model)),
        }
    }

    /// Minimizes `objective` over all feasible allocations via the paper's
    /// binary-search scheme, returning a provably optimal allocation.
    pub fn minimize(&self, objective: &Objective) -> Result<OptimizeReport, OptError> {
        let start = Instant::now();
        if matches!(objective, Objective::Feasibility) {
            // Feasibility has no cost; reuse find_feasible with cost 0.
            let solution = self.find_feasible()?;
            return Ok(OptimizeReport {
                solution,
                cost: 0,
                encode: EncodeStats::default(),
                solve_calls: 1,
                stats: SolverStats::default(),
                wall: start.elapsed(),
                phases: PhaseTotals::default(),
                workers: Vec::new(),
                certificate: None,
            });
        }

        let slot_media = variable_slot_media(self.arch, objective).map_err(OptError::Objective)?;
        let mut enc = Encoding::build(self.arch, self.tasks, &self.opts, &slot_media);
        let cost = enc
            .encode_objective(objective)
            .map_err(OptError::Objective)?
            .expect("non-feasibility objectives define a cost");
        if enc.infeasible {
            return Err(OptError::Infeasible);
        }

        let min_opts = self.opts.minimize_options();
        let (status, solve_calls, encode, stats, workers, certificate) = match self.opts.strategy {
            Strategy::Single => {
                let outcome = enc.problem.minimize(cost, &min_opts);
                (
                    outcome.status,
                    outcome.solve_calls,
                    outcome.encode,
                    outcome.stats,
                    Vec::new(),
                    outcome.certificate,
                )
            }
            Strategy::Portfolio {
                workers,
                deterministic,
            }
            | Strategy::WindowSearch {
                workers,
                deterministic,
            } => {
                let popts = PortfolioOptions {
                    workers,
                    deterministic,
                    base: min_opts,
                    verbose: false,
                };
                let outcome = if matches!(self.opts.strategy, Strategy::WindowSearch { .. }) {
                    minimize_window_search(&enc.problem, cost, &popts)
                } else {
                    minimize_portfolio(&enc.problem, cost, &popts)
                };
                (
                    outcome.status,
                    outcome.solve_calls,
                    outcome.encode,
                    outcome.stats,
                    outcome.workers,
                    outcome.certificate,
                )
            }
        };
        let wall = start.elapsed();
        self.report_from_status(
            objective,
            &enc,
            status,
            solve_calls,
            encode,
            stats,
            workers,
            certificate,
            wall,
            self.opts.certify,
        )
    }

    /// Re-solves through a long-lived [`WarmEngine`] instead of a one-shot
    /// search: the engine decides per call how much of the *previous* solve
    /// survives (retained solver with learned clauses, validated optimum
    /// hint, or nothing — see [`WarmMode`]) and this wrapper applies the
    /// same decode / re-validate / certify gates as
    /// [`minimize`](Optimizer::minimize). The optional `window` restricts
    /// the cost search to `lo ≤ cost ≤ hi`
    /// ([`OptError::Infeasible`] then means *no solution in the window*).
    ///
    /// The engine must have been constructed from
    /// [`SolveOptions::minimize_options`] of options equivalent to this
    /// optimizer's — in particular the same `certify` flag — since the
    /// engine's own options govern the search it runs. The configured
    /// [`Strategy`](crate::Strategy) is ignored: warm re-solving is
    /// inherently single-search (a retained solver cannot be raced).
    pub fn minimize_warm(
        &self,
        objective: &Objective,
        engine: &mut WarmEngine,
        window: Option<(i64, i64)>,
    ) -> Result<(OptimizeReport, WarmMode), OptError> {
        let start = Instant::now();
        if matches!(objective, Objective::Feasibility) {
            let solution = self.find_feasible()?;
            return Ok((
                OptimizeReport {
                    solution,
                    cost: 0,
                    encode: EncodeStats::default(),
                    solve_calls: 1,
                    stats: SolverStats::default(),
                    wall: start.elapsed(),
                    phases: PhaseTotals::default(),
                    workers: Vec::new(),
                    certificate: None,
                },
                WarmMode::Cold,
            ));
        }

        let slot_media = variable_slot_media(self.arch, objective).map_err(OptError::Objective)?;
        let mut enc = Encoding::build(self.arch, self.tasks, &self.opts, &slot_media);
        let cost = enc
            .encode_objective(objective)
            .map_err(OptError::Objective)?
            .expect("non-feasibility objectives define a cost");
        if enc.infeasible {
            return Err(OptError::Infeasible);
        }

        let certify = engine.options().certify;
        let (outcome, mode) = match window {
            Some((lo, hi)) => engine.solve_window(&enc.problem, cost, lo, hi),
            None => engine.solve(&enc.problem, cost),
        };
        let wall = start.elapsed();
        let report = self.report_from_status(
            objective,
            &enc,
            outcome.status,
            outcome.solve_calls,
            outcome.encode,
            outcome.stats,
            Vec::new(),
            outcome.certificate,
            wall,
            certify,
        )?;
        Ok((report, mode))
    }

    /// Shared tail of every optimization entry point: decode the winning
    /// model, re-validate it independently, verify the certificate when one
    /// was requested, and map non-optimal statuses to typed errors.
    #[allow(clippy::too_many_arguments)] // internal plumbing, not API
    fn report_from_status(
        &self,
        objective: &Objective,
        enc: &Encoding,
        status: MinimizeStatus,
        solve_calls: u32,
        encode: EncodeStats,
        stats: SolverStats,
        workers: Vec<WorkerReport>,
        certificate: Option<Certificate>,
        wall: Duration,
        certify: bool,
    ) -> Result<OptimizeReport, OptError> {
        match status {
            MinimizeStatus::Infeasible => Err(OptError::Infeasible),
            MinimizeStatus::Unknown { incumbent } | MinimizeStatus::Interrupted { incumbent } => {
                let incumbent = match incumbent {
                    None => None,
                    Some((value, model)) => {
                        let sol = self.check(decode(enc, &model))?;
                        Some((value, sol))
                    }
                };
                Err(OptError::Budget { incumbent })
            }
            // The portfolio resolves external optima to concrete models
            // before returning; a bare ExternalOptimal can only escape a
            // direct `IntProblem::minimize` with a foreign shared bound,
            // which neither the optimizer nor the warm engine configures.
            MinimizeStatus::ExternalOptimal { .. } => {
                unreachable!("optimizer never shares bounds outside a portfolio")
            }
            MinimizeStatus::Optimal { value, model } => {
                // Every winner passes the same independent re-validation
                // gate.
                let solution = self.check(decode(enc, &model))?;
                let mut certify_ms = 0.0;
                let certificate = if certify {
                    // The stopwatch both times verification and records the
                    // `certify` trace span from the same f64, mirroring the
                    // encode/search attribution.
                    let sw = self.opts.obs.stopwatch(Phase::Certify);
                    let report = self.certify(objective, value, &solution.allocation, certificate);
                    certify_ms = sw.finish();
                    Some(report?)
                } else {
                    None
                };
                let phases = PhaseTotals {
                    encode_ms: encode.encode_ms,
                    search_ms: stats.solve_ms,
                    certify_ms,
                };
                Ok(OptimizeReport {
                    solution,
                    cost: value,
                    encode,
                    solve_calls,
                    stats,
                    wall,
                    phases,
                    workers,
                    certificate,
                })
            }
        }
    }
}
