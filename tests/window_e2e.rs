//! End-to-end window-search strategy tests: disjoint-window workers must
//! agree with the single search on the optimal cost, every winner must
//! pass the independent analysis re-validation, the deterministic mode
//! must be bit-stable (same optimum, same per-worker window assignment,
//! same solver counters) across repeated runs and all worker counts, and
//! the SA-incumbent warm start must compose with the window scheduler.

use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_heuristics::{anneal, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn small(seed: u64) -> GenParams {
    GenParams {
        name: format!("win-{seed}"),
        n_tasks: 9,
        n_chains: 3,
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: true,
        deadline_slack: 1.5,
    }
}

fn options(strategy: Strategy) -> SolveOptions {
    SolveOptions {
        max_slot: 16,
        strategy,
        ..Default::default()
    }
}

#[test]
fn window_search_agrees_with_single_and_revalidates() {
    let ring = MediumId(0);
    for seed in [1u64, 2, 3] {
        let w = generate(&small(seed));
        let single = Optimizer::new(&w.arch, &w.tasks)
            .with_options(options(Strategy::Single))
            .minimize(&Objective::TokenRotationTime(ring))
            .unwrap_or_else(|e| panic!("seed {seed} single: {e}"));

        for deterministic in [true, false] {
            let windowed = Optimizer::new(&w.arch, &w.tasks)
                .with_options(options(Strategy::WindowSearch {
                    workers: 4,
                    deterministic,
                }))
                .minimize(&Objective::TokenRotationTime(ring))
                .unwrap_or_else(|e| panic!("seed {seed} det={deterministic}: {e}"));

            assert_eq!(
                windowed.cost, single.cost,
                "seed {seed} det={deterministic}: window search disagrees with single"
            );
            assert!(
                windowed.solution.report.is_feasible(),
                "seed {seed} det={deterministic}"
            );
            assert_eq!(windowed.workers.len(), 4);
            assert_eq!(
                windowed.workers.iter().filter(|w| w.winner).count(),
                1,
                "seed {seed} det={deterministic}: expected exactly one winner"
            );
            // Window-search reports record the probed sub-windows.
            let probed: usize = windowed.workers.iter().map(|w| w.windows.len()).sum();
            assert!(
                probed > 0,
                "seed {seed} det={deterministic}: no worker probed a window"
            );
        }
    }
}

#[test]
fn deterministic_window_search_is_bit_stable() {
    let ring = MediumId(0);
    let w = generate(&small(7));
    let mut optima = Vec::new();
    for workers in [1usize, 2, 4] {
        let opts = options(Strategy::WindowSearch {
            workers,
            deterministic: true,
        });
        let a = Optimizer::new(&w.arch, &w.tasks)
            .with_options(opts.clone())
            .minimize(&Objective::TokenRotationTime(ring))
            .expect("feasible");
        let b = Optimizer::new(&w.arch, &w.tasks)
            .with_options(opts)
            .minimize(&Objective::TokenRotationTime(ring))
            .expect("feasible");
        // Bit-stable across runs: same optimum, same allocation, same
        // solver counters, and the same window assignment per worker.
        assert_eq!(a.cost, b.cost, "{workers} workers: cost drifted");
        assert_eq!(a.solve_calls, b.solve_calls, "{workers} workers");
        assert_eq!(a.stats.conflicts, b.stats.conflicts, "{workers} workers");
        assert_eq!(
            a.solution.allocation.placement, b.solution.allocation.placement,
            "{workers} workers: deterministic window search returned different allocations"
        );
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(
                wa.windows, wb.windows,
                "{workers} workers: worker {} window assignment drifted",
                wa.index
            );
        }
        optima.push(a.cost);
    }
    // Stable across worker counts: the proven optimum is the same value.
    assert!(
        optima.windows(2).all(|p| p[0] == p[1]),
        "optimum varies with worker count: {optima:?}"
    );
}

#[test]
fn sa_warm_start_composes_with_window_search() {
    let ring = MediumId(0);
    let w = generate(&small(4));
    let sa = anneal(
        &w.arch,
        &w.tasks,
        &HeuristicObjective::TokenRotationTime(ring),
        &SaParams {
            restarts: 2,
            iters_per_stage: 150,
            stages: 30,
            max_slot: 16,
            ..Default::default()
        },
    );
    let mut opts = options(Strategy::WindowSearch {
        workers: 4,
        deterministic: false,
    });
    if sa.feasible {
        opts.initial_upper = Some(sa.objective);
    }
    let result = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts)
        .minimize(&Objective::TokenRotationTime(ring))
        .expect("feasible");
    assert!(result.solution.report.is_feasible());
    if sa.feasible {
        assert!(
            result.cost <= sa.objective,
            "optimum {} worse than SA incumbent {}",
            result.cost,
            sa.objective
        );
    }
}
