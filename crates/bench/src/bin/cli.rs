//! `optalloc-cli` — optimal task allocation from the command line.
//!
//! ```text
//! optalloc-cli generate <name> <out.json>       # dump a bundled workload
//! optalloc-cli solve <workload.json> [options]  # optimize it
//! optalloc-cli serve [options]                  # long-running TCP service
//! optalloc-cli submit <request> [options]       # talk to a running service
//!
//! generate names: tindell43, tindell16, table2-e<N>, table3-t<N>,
//!                 arch-a, arch-b, arch-c
//!
//! solve options:
//!   --objective trt | sumtrt | busload | maxutil | spread | feasible
//!               (trt/busload use medium 0 unless --medium <k> is given)
//!   --medium <k>            target medium index for trt/busload
//!   --max-conflicts <n>     solver budget
//!   --timeout-ms <n>        wall-clock limit; exceeding it exits 4
//!   --json                  print one machine-readable JSON result line
//!                           (the service protocol's JobResult) instead of
//!                           the human report
//!   --portfolio <n|auto>    race n diversified workers instead of one search
//!                           (auto = one per host core)
//!   --window <n|auto>       parallel window search: n workers over disjoint
//!                           cost sub-windows (auto = one per host core)
//!   --deterministic         bit-stable parallel mode (barrier rounds /
//!                           join all, lowest index wins)
//!   --no-encoder-opt        disable the encoder optimization layer (gate
//!                           hash-consing, interval narrowing, SAT
//!                           preprocessing) — the pre-optimization baseline;
//!                           OPTALLOC_ENCODER_OPT=0 in the environment does
//!                           the same
//!   --search <engine>       CDCL search engine: `full` (default), `legacy`,
//!                           or a +-joined subset of bin/tier/ema/viv/elim
//!                           (see docs/SOLVER.md)
//!   --certify               record DRAT proof traces, assemble an optimality
//!                           certificate, and verify it (built-in forward
//!                           checker + independent witness replay); exits
//!                           nonzero if the certificate is rejected
//!   --proof <file>          write the certificate's DRAT traces to <file>
//!                           (text DRAT with `c` comments; implies --certify)
//!   --max-slot <n>          upper bound for TDMA slot decision variables
//!   --out <alloc.json>      write the allocation as JSON
//!   --trace <file>          record phase spans and write the trace after
//!                           solving: `.jsonl` extension for the line
//!                           format, anything else for Chrome trace_event
//!                           JSON (loadable in chrome://tracing / Perfetto);
//!                           see docs/OBSERVABILITY.md
//!   --metrics               print a metrics-registry snapshot (JSON) to
//!                           stderr after solving
//!   --progress              live progress line on stderr while searching
//!                           (conflicts/s, restarts, learnt tiers, window)
//!
//! serve options:
//!   --addr <host:port>      bind address (default 127.0.0.1:7723)
//!   --workers <n>           solver worker threads (default 1; warm-start
//!                           chains work best single-worker)
//!   --queue <n>             bounded queue depth (default 16)
//!   --cache <n>             result-cache capacity (default 64)
//!   --timeout-ms <n>        default per-job timeout
//!   plus the solve options --max-conflicts / --certify / --portfolio /
//!   --window / --deterministic, applied to every job
//!
//! submit requests (all take --addr <host:port> and --json):
//!   solve <workload.json> [--objective o] [--medium k] [--timeout-ms n]
//!   delta <ops.json> [--base <fingerprint>] [--timeout-ms n]
//!                           ops.json: JSON array of InstanceDelta values
//!   status
//!   metrics                 service metrics-registry snapshot
//!   shutdown                begin graceful drain, then exit
//!
//! exit codes (solve and submit): 0 optimal/feasible, 1 internal error or
//! rejected submission, 2 usage/input error, 3 proven infeasible,
//! 4 timeout or conflict-budget exhaustion.
//! ```
//!
//! The workload file is the JSON serialization of
//! `optalloc_workloads::Workload` (architecture + task set + a feasibility
//! witness); the output is the optimal `optalloc_model::Allocation`.

use optalloc::{EncoderOpt, Objective, OptError, Optimizer, SearchEngine, SolveOptions, Strategy};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_obs::{format_progress_line, Obs, PhaseTotals, ProgressHook};
use optalloc_service::protocol::{
    Instance, JobOutcome, JobResult, Request, Response, SearchSummary, WarmLabel,
};
use optalloc_service::{serve, Service, ServiceConfig};
use optalloc_workloads::{
    architecture_scaling, generate, table4_workload, task_scaling, Fig2, GenParams, Workload,
};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:7723";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  optalloc-cli generate <name> <out.json>\n  \
         optalloc-cli solve <workload.json> [--objective o] [--medium k] \
         [--max-conflicts n] [--timeout-ms n] [--json] [--portfolio n|auto] \
         [--window n|auto] [--deterministic] [--no-encoder-opt] \
         [--search engine] [--certify] [--proof file] [--max-slot n] \
         [--out alloc.json] [--trace file] [--metrics] [--progress]\n  \
         optalloc-cli serve [--addr host:port] [--workers n] [--queue n] \
         [--cache n] [--timeout-ms n] [--max-conflicts n] [--certify] \
         [--search engine] [--portfolio n|auto] [--window n|auto] \
         [--deterministic]\n  \
         optalloc-cli submit solve <workload.json> | delta <ops.json> \
         [--base fp] | status | metrics | shutdown  [--addr host:port] [--json]"
    );
    ExitCode::from(2)
}

/// `n` workers, or one per host core for `auto`.
fn parse_workers(arg: Option<&String>) -> Option<usize> {
    let arg = arg?;
    if arg == "auto" {
        return Some(host_cores());
    }
    arg.parse().ok()
}

/// Number of cores the host exposes (1 when undetectable).
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bundled(name: &str) -> Option<Workload> {
    if let Some(n) = name.strip_prefix("table2-e") {
        return n.parse().ok().map(architecture_scaling);
    }
    if let Some(n) = name.strip_prefix("table3-t") {
        return n.parse().ok().map(task_scaling);
    }
    match name {
        "tindell43" => Some(generate(&GenParams::tindell43())),
        "tindell16" => Some(generate(&GenParams {
            n_tasks: 16,
            n_chains: 5,
            utilization: 0.35,
            name: "tindell16".into(),
            ..GenParams::tindell43()
        })),
        "arch-a" => Some(table4_workload(Fig2::A, &GenParams::tindell43())),
        "arch-b" => Some(table4_workload(Fig2::B, &GenParams::tindell43())),
        "arch-c" => Some(table4_workload(Fig2::C, &GenParams::tindell43())),
        _ => None,
    }
}

/// Dump every DRAT trace of a verified certificate to one text file.
///
/// Each per-worker proof is prefixed with `c` comment lines naming the
/// cost windows it certifies, so an external checker can be pointed at
/// the matching section.
fn write_proofs(path: &str, cert: &optalloc::intopt::Certificate) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "c optalloc optimality certificate: optimum {}, cost range lower bound {}",
        cert.optimum, cert.cost_lo
    )?;
    for (i, p) in cert.proofs.iter().enumerate() {
        writeln!(f, "c proof {i}: {} certified window(s)", p.windows.len())?;
        for w in &p.windows {
            writeln!(f, "c   window [{}, {}]", w.lo, w.hi)?;
        }
        p.log.write_drat(&mut f)?;
    }
    f.flush()
}

/// The documented exit-code contract, applied to a job verdict.
fn exit_for(outcome: &JobOutcome) -> ExitCode {
    match outcome {
        JobOutcome::Optimal { .. } => ExitCode::SUCCESS,
        JobOutcome::Infeasible => ExitCode::from(3),
        JobOutcome::Budget { .. } | JobOutcome::Timeout { .. } => ExitCode::from(4),
        JobOutcome::Error { .. } => ExitCode::from(1),
    }
}

fn parse_objective(name: &str, medium: u32) -> Option<Objective> {
    match name {
        "trt" => Some(Objective::TokenRotationTime(MediumId(medium))),
        "sumtrt" => Some(Objective::SumTokenRotationTimes),
        "busload" => Some(Objective::BusLoadPermille(MediumId(medium))),
        "maxutil" => Some(Objective::MaxUtilizationPermille),
        "spread" => Some(Objective::UtilizationSpreadPermille),
        "feasible" => Some(Objective::Feasibility),
        _ => None,
    }
}

fn read_workload(path: &str) -> Result<Workload, ExitCode> {
    let input = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    let w: Workload = serde_json::from_str(&input).map_err(|e| {
        eprintln!("bad workload file: {e}");
        ExitCode::from(2)
    })?;
    if let Err(e) = w.arch.validate() {
        eprintln!("invalid architecture: {e}");
        return Err(ExitCode::from(2));
    }
    if let Err(e) = w.tasks.validate() {
        eprintln!("invalid task set: {e}");
        return Err(ExitCode::from(2));
    }
    Ok(w)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args),
        Some("solve") => cmd_solve(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        _ => usage(),
    }
}

fn cmd_generate(args: &[String]) -> ExitCode {
    let (Some(name), Some(out)) = (args.get(1), args.get(2)) else {
        return usage();
    };
    let Some(w) = bundled(name) else {
        eprintln!("unknown workload `{name}`");
        return ExitCode::from(2);
    };
    let json = serde_json::to_string_pretty(&w).expect("serialize");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "wrote {out}: {} tasks, {} ECUs, {} media",
        w.tasks.len(),
        w.arch.num_ecus(),
        w.arch.num_media()
    );
    ExitCode::SUCCESS
}

fn cmd_solve(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return usage();
    };
    let mut objective_name = "feasible".to_string();
    let mut medium = 0u32;
    let mut max_conflicts = None;
    let mut out_path: Option<String> = None;
    let mut portfolio: Option<usize> = None;
    let mut window: Option<usize> = None;
    let mut deterministic = false;
    let mut certify = false;
    let mut json = false;
    let mut timeout_ms: Option<u64> = None;
    let mut proof_path: Option<String> = None;
    let mut max_slot: Option<u64> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut progress = false;
    let mut search = SearchEngine::full();
    let mut encoder_opt = if optalloc_bench::encoder_opt_disabled() {
        EncoderOpt::none()
    } else {
        EncoderOpt::default()
    };
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--objective" => objective_name = it.next().cloned().unwrap_or_default(),
            "--medium" => medium = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--max-conflicts" => max_conflicts = it.next().and_then(|s| s.parse().ok()),
            "--timeout-ms" => timeout_ms = it.next().and_then(|s| s.parse().ok()),
            "--json" => json = true,
            "--portfolio" => portfolio = parse_workers(it.next()),
            "--window" => window = parse_workers(it.next()),
            "--deterministic" => deterministic = true,
            "--certify" => certify = true,
            "--proof" => {
                proof_path = it.next().cloned();
                certify = true;
            }
            "--max-slot" => max_slot = it.next().and_then(|s| s.parse().ok()),
            "--trace" => trace_path = it.next().cloned(),
            "--metrics" => metrics = true,
            "--progress" => progress = true,
            "--no-encoder-opt" => encoder_opt = EncoderOpt::none(),
            "--search" => match it.next().map(|s| s.parse::<SearchEngine>()) {
                Some(Ok(engine)) => search = engine,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--search needs an argument");
                    return ExitCode::from(2);
                }
            },
            "--out" => out_path = it.next().cloned(),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }

    let w = match read_workload(path) {
        Ok(w) => w,
        Err(code) => return code,
    };
    let Some(objective) = parse_objective(&objective_name, medium) else {
        eprintln!("unknown objective `{objective_name}`");
        return ExitCode::from(2);
    };

    let mut opts = SolveOptions {
        max_conflicts,
        strategy: match (window, portfolio) {
            (Some(workers), _) => Strategy::WindowSearch {
                workers,
                deterministic,
            },
            (None, Some(workers)) => Strategy::Portfolio {
                workers,
                deterministic,
            },
            (None, None) => Strategy::Single,
        },
        encoder_opt,
        search,
        certify,
        ..Default::default()
    };
    if let Some(ms) = max_slot {
        opts.max_slot = ms;
    }

    // Tracing and metrics share one live handle; without either flag the
    // solvers keep the default no-op handle (a single branch per use).
    let obs = if trace_path.is_some() || metrics {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    opts.obs = obs.clone();
    if progress {
        opts.progress = Some(ProgressHook::new(|ev| {
            eprint!("\r{}\x1b[K", format_progress_line(ev));
            let _ = std::io::stderr().flush();
        }));
    }

    // A wall-clock limit rides on cooperative cancellation: one detached
    // watchdog thread raises the solvers' shared interrupt flag.
    let timed_out = Arc::new(AtomicBool::new(false));
    if let Some(ms) = timeout_ms {
        let flag = Arc::new(AtomicBool::new(false));
        opts.interrupt = Some(Arc::clone(&flag));
        let timed_out = Arc::clone(&timed_out);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(ms));
            timed_out.store(true, Ordering::Relaxed);
            flag.store(true, Ordering::Relaxed);
        });
    }

    let fingerprint = optalloc_service::fingerprint::fingerprint(
        &Instance {
            arch: w.arch.clone(),
            tasks: w.tasks.clone(),
        },
        &objective,
        &opts,
        None,
    );
    let optimizer = Optimizer::new(&w.arch, &w.tasks).with_options(opts);
    let start = std::time::Instant::now();

    let feasibility = matches!(objective, Objective::Feasibility);
    let solved = if feasibility {
        optimizer.find_feasible().map(|sol| (sol, None))
    } else {
        optimizer
            .minimize(&objective)
            .map(|r| (r.solution.clone(), Some(r)))
    };
    let solve_ms = start.elapsed().as_millis() as u64;
    if progress {
        eprintln!(); // terminate the live progress line
    }

    let (outcome, report) = match solved {
        Ok((sol, report)) => (
            JobOutcome::Optimal {
                cost: report.as_ref().map_or(0, |r| r.cost),
                allocation: sol.allocation,
                certified: report.as_ref().is_some_and(|r| r.certificate.is_some()),
            },
            report,
        ),
        Err(OptError::Infeasible) => (JobOutcome::Infeasible, None),
        Err(OptError::Budget { incumbent }) => {
            let incumbent_cost = incumbent.map(|(v, _)| v);
            let outcome = if timed_out.load(Ordering::Relaxed) {
                JobOutcome::Timeout { incumbent_cost }
            } else {
                JobOutcome::Budget { incumbent_cost }
            };
            (outcome, None)
        }
        Err(e) => (
            JobOutcome::Error {
                message: e.to_string(),
            },
            None,
        ),
    };
    let code = exit_for(&outcome);

    // Trace and metrics export happen for every outcome, not just optimal
    // ones — a budget-exhausted run is exactly when you want the trace.
    if let Some(tp) = &trace_path {
        if let Err(e) = obs.write_trace(std::path::Path::new(tp)) {
            eprintln!("cannot write {tp}: {e}");
            return ExitCode::from(2);
        }
        if !json {
            println!("trace written to {tp}");
        }
    }
    if metrics {
        let snapshot = obs.metrics().expect("--metrics enables obs").snapshot();
        eprintln!(
            "{}",
            serde_json::to_string_pretty(&snapshot).expect("serialize")
        );
    }

    if json {
        let result = JobResult {
            fingerprint: fingerprint.to_string(),
            outcome: outcome.clone(),
            cached: false,
            warm: WarmLabel::Cold,
            solve_calls: report.as_ref().map_or(0, |r| r.solve_calls),
            conflicts: report.as_ref().map_or(0, |r| r.stats.conflicts),
            solve_ms,
            search: report.as_ref().map_or_else(SearchSummary::default, |r| {
                SearchSummary::from_stats(&r.stats)
            }),
            phases: report
                .as_ref()
                .map_or_else(PhaseTotals::default, |r| r.phases),
        };
        println!("{}", serde_json::to_string(&result).expect("serialize"));
    }

    let JobOutcome::Optimal { allocation, .. } = outcome else {
        if !json {
            match &outcome {
                JobOutcome::Infeasible => eprintln!("no feasible allocation exists"),
                JobOutcome::Budget { .. } => eprintln!("conflict budget exhausted"),
                JobOutcome::Timeout { .. } => eprintln!("timed out after {solve_ms} ms"),
                JobOutcome::Error { message } => eprintln!("{message}"),
                JobOutcome::Optimal { .. } => unreachable!(),
            }
        }
        return code;
    };

    if !json {
        if let Some(r) = &report {
            let line = match objective {
                Objective::TokenRotationTime(_) | Objective::SumTokenRotationTimes => {
                    format!(
                        "optimal {objective_name} = {} ticks ({:.2} ms)",
                        r.cost,
                        ticks_to_ms(r.cost as u64)
                    )
                }
                _ => format!("optimal {objective_name} = {}", r.cost),
            };
            println!(
                "encoding: {} vars, {} literals; {} SOLVE calls, {:.2}s",
                r.encode.bool_vars,
                r.encode.literals,
                r.solve_calls,
                r.wall.as_secs_f64()
            );
            println!(
                "search [{}]: {} conflicts, {} restarts ({} luby / {} ema, \
                 {} blocked), {} vivified, {} eliminated (+{} resolvents), \
                 tiers {}/{}/{}",
                search.label(),
                r.stats.conflicts,
                r.stats.restarts,
                r.stats.restarts_luby,
                r.stats.restarts_ema,
                r.stats.restarts_blocked,
                r.stats.vivified,
                r.stats.elim_vars,
                r.stats.elim_resolvents,
                r.stats.tier_core,
                r.stats.tier_mid,
                r.stats.tier_local,
            );
            for worker in &r.workers {
                println!("  {worker}");
            }
            if let Some(cert) = &r.certificate {
                println!(
                    "certificate VERIFIED: {} — refutations cover [{}, {}], \
                     witness replayed through independent analysis",
                    cert.summary,
                    cert.certificate.cost_lo,
                    cert.certificate.optimum - 1
                );
            }
            println!("{line}");
        } else {
            println!("feasible");
        }
        for (tid, t) in w.tasks.iter() {
            println!(
                "  {:<12} -> {}",
                t.name,
                w.arch.ecu(allocation.ecu_of(tid)).name
            );
        }
    }
    if let Some(pp) = &proof_path {
        if let Some(cert) = report.as_ref().and_then(|r| r.certificate.as_ref()) {
            if let Err(e) = write_proofs(pp, &cert.certificate) {
                eprintln!("cannot write {pp}: {e}");
                return ExitCode::from(2);
            }
            if !json {
                println!("DRAT traces written to {pp}");
            }
        }
    }
    if let Some(out) = out_path {
        let json_alloc = serde_json::to_string_pretty(&allocation).expect("serialize");
        if let Err(e) = std::fs::write(&out, json_alloc) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        if !json {
            println!("allocation written to {out}");
        }
    }
    code
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut config = ServiceConfig::default();
    let mut portfolio: Option<usize> = None;
    let mut window: Option<usize> = None;
    let mut deterministic = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or(addr),
            "--workers" => {
                config.workers = it.next().and_then(|s| s.parse().ok()).unwrap_or(1);
            }
            "--queue" => {
                config.queue_capacity = it.next().and_then(|s| s.parse().ok()).unwrap_or(16);
            }
            "--cache" => {
                config.cache_capacity = it.next().and_then(|s| s.parse().ok()).unwrap_or(64);
            }
            "--timeout-ms" => {
                config.default_timeout = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .map(Duration::from_millis);
            }
            "--max-conflicts" => {
                config.solve.max_conflicts = it.next().and_then(|s| s.parse().ok());
            }
            "--certify" => config.solve.certify = true,
            "--search" => match it.next().map(|s| s.parse::<SearchEngine>()) {
                Some(Ok(engine)) => config.solve.search = engine,
                Some(Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--search needs an argument");
                    return ExitCode::from(2);
                }
            },
            "--portfolio" => portfolio = parse_workers(it.next()),
            "--window" => window = parse_workers(it.next()),
            "--deterministic" => deterministic = true,
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }
    config.solve.strategy = match (window, portfolio) {
        (Some(workers), _) => Strategy::WindowSearch {
            workers,
            deterministic,
        },
        (None, Some(workers)) => Strategy::Portfolio {
            workers,
            deterministic,
        },
        (None, None) => Strategy::Single,
    };
    let mut server = match serve(Service::new(config), &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    println!("optalloc-service listening on {}", server.addr());
    server.wait();
    println!("drained; bye");
    ExitCode::SUCCESS
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(what) = args.get(1) else {
        return usage();
    };
    let mut addr = DEFAULT_ADDR.to_string();
    let mut json = false;
    let mut objective_name = "maxutil".to_string();
    let mut medium = 0u32;
    let mut timeout_ms: Option<u64> = None;
    let mut base: Option<String> = None;
    let positional_after = match what.as_str() {
        "solve" | "delta" => 3,
        _ => 2,
    };
    let mut it = args.get(positional_after..).unwrap_or_default().iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or(addr),
            "--json" => json = true,
            "--objective" => objective_name = it.next().cloned().unwrap_or_default(),
            "--medium" => medium = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            "--timeout-ms" => timeout_ms = it.next().and_then(|s| s.parse().ok()),
            "--base" => base = it.next().cloned(),
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }

    let request = match what.as_str() {
        "solve" => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            let w = match read_workload(path) {
                Ok(w) => w,
                Err(code) => return code,
            };
            let Some(objective) = parse_objective(&objective_name, medium) else {
                eprintln!("unknown objective `{objective_name}`");
                return ExitCode::from(2);
            };
            Request::Solve {
                instance: Instance {
                    arch: w.arch,
                    tasks: w.tasks,
                },
                objective,
                timeout_ms,
            }
        }
        "delta" => {
            let Some(path) = args.get(2) else {
                return usage();
            };
            let input = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let ops = match serde_json::from_str(&input) {
                Ok(ops) => ops,
                Err(e) => {
                    eprintln!("bad delta file: {e}");
                    return ExitCode::from(2);
                }
            };
            Request::Delta {
                base,
                ops,
                objective: None,
                timeout_ms,
            }
        }
        "status" => Request::Status,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => {
            eprintln!("unknown request `{other}`");
            return usage();
        }
    };

    let stream = match std::net::TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("connection error: {e}");
            return ExitCode::from(1);
        }
    };
    let mut line = serde_json::to_string(&request).expect("serialize");
    line.push('\n');
    let mut response_line = String::new();
    let io = writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .and_then(|()| BufReader::new(stream).read_line(&mut response_line));
    if let Err(e) = io {
        eprintln!("connection error: {e}");
        return ExitCode::from(1);
    }
    let response: Response = match serde_json::from_str(&response_line) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bad response from server: {e}");
            return ExitCode::from(1);
        }
    };
    if json {
        println!("{}", response_line.trim_end());
    }
    match response {
        Response::Result(result) => {
            if !json {
                match &result.outcome {
                    JobOutcome::Optimal {
                        cost, certified, ..
                    } => println!(
                        "optimal cost {cost}{} — warm {:?}, {} SOLVE calls, \
                         {} conflicts, {} ms{}",
                        if *certified { " (certified)" } else { "" },
                        result.warm,
                        result.solve_calls,
                        result.conflicts,
                        result.solve_ms,
                        if result.cached { " [cache hit]" } else { "" },
                    ),
                    other => println!("{other:?}"),
                }
                println!("fingerprint {}", result.fingerprint);
            }
            exit_for(&result.outcome)
        }
        Response::Rejected { reason } => {
            if !json {
                eprintln!("rejected: {reason:?}");
            }
            ExitCode::from(1)
        }
        Response::Error { message } => {
            if !json {
                eprintln!("error: {message}");
            }
            ExitCode::from(1)
        }
        Response::Status {
            queued,
            inflight,
            draining,
            cached,
            search,
            phases,
        } => {
            if !json {
                println!(
                    "queued {queued}, inflight {inflight}, draining {draining}, \
                     cached {cached}"
                );
                println!(
                    "phase totals: encode {:.1} ms, search {:.1} ms, \
                     certify {:.1} ms",
                    phases.encode_ms, phases.search_ms, phases.certify_ms,
                );
                println!(
                    "search totals: {} propagations, {} luby + {} ema restarts \
                     ({} blocked), {} vivified, {} eliminated, tiers {}/{}/{}, \
                     peak {} learnts",
                    search.propagations,
                    search.restarts_luby,
                    search.restarts_ema,
                    search.restarts_blocked,
                    search.vivified,
                    search.elim_vars,
                    search.tier_core,
                    search.tier_mid,
                    search.tier_local,
                    search.peak_learnts,
                );
            }
            ExitCode::SUCCESS
        }
        Response::Metrics { snapshot } => {
            if !json {
                for c in &snapshot.counters {
                    println!("{} {}", c.name, c.value);
                }
                for g in &snapshot.gauges {
                    println!("{} {}", g.name, g.value);
                }
                for h in &snapshot.histograms {
                    println!("{} count {} sum {:.1} ms", h.name, h.count, h.sum_ms);
                }
            }
            ExitCode::SUCCESS
        }
        Response::ShuttingDown => {
            if !json {
                println!("shutting down");
            }
            ExitCode::SUCCESS
        }
    }
}
