//! The metamorphic relation library.
//!
//! Each relation derives a transformed instance from a base instance,
//! solves both through the *full* pipeline (encode → CDCL(PB) → binary
//! search → decode → re-validate), and checks the relationship between the
//! two optima that the transform provably implies:
//!
//! | relation      | transform                               | implied relationship |
//! |---------------|-----------------------------------------|----------------------|
//! | `rename`      | permute/rename all declarations         | identical outcome |
//! | `scale`       | multiply every time quantity by `k`     | exact / one-sided under TRT objectives (see below) |
//! | `monotone`    | raise a WCET or message size, or tighten a deadline | optimum non-decreasing, infeasible stays infeasible |
//! | `redundant`   | add provably-redundant constraints      | identical outcome |
//! | `engine-grid` | same instance, N engine configurations  | all agree with a certified run |
//! | `warm-delta`  | delta chain: warm engine vs. cold solve, plus the service path | identical outcome |
//!
//! **Scaling soundness.** Integer response-time analysis is an exact fixed
//! point under uniform time scaling: `⌈(k·r + k·J)/(k·t)⌉ = ⌈(r + J)/t⌉`,
//! so scaling periods, deadlines, WCETs, per-byte costs, frame overheads,
//! slot tables *and* the gateway service time by `k` maps every feasible
//! configuration to a feasible one. When slot tables are fixed instance
//! data the map is a bijection, so outcomes match exactly (permille
//! objectives are ratios of scaled quantities — invariant). Under TRT
//! objectives, slot lengths are integer decision variables whose
//! granularity does not scale, so the scaled instance may do strictly
//! *better* but never worse than the scaled base optimum: the check is
//! one-sided.
//!
//! All relations treat a conflict-budget abort on either side as *skipped*
//! (reported, never a failure); every other divergence — including
//! validation or certification failures, which indicate the solver lied —
//! is a violation.

use crate::spec::{base_options, InstanceSpec, ObjectiveSpec};
use optalloc::{
    apply_deltas, EncoderOpt, InstanceDelta, OptError, Optimizer, SearchEngine, SolveOptions,
    Strategy, WarmEngine,
};
use optalloc_intopt::BinSearchMode;
use optalloc_service::protocol::{Instance, JobOutcome, Request, Response};
use optalloc_service::{Service, ServiceConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which metamorphic relation to check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationKind {
    /// Optimum invariance under renaming and declaration reordering.
    Rename,
    /// Cost-scaling equivariance under uniform time scaling.
    Scale,
    /// Monotone non-decrease under WCET/message-size increase and deadline
    /// tightening.
    Monotone,
    /// Invariance under provably-redundant extra constraints.
    Redundant,
    /// N-way engine agreement against a certified ground truth.
    EngineGrid,
    /// Warm-engine delta chain vs. cold re-solve, through both the core
    /// API and the service request path.
    WarmDelta,
}

impl RelationKind {
    /// Every relation, in campaign order (cheap first).
    pub fn all() -> Vec<RelationKind> {
        vec![
            RelationKind::Rename,
            RelationKind::Scale,
            RelationKind::Monotone,
            RelationKind::Redundant,
            RelationKind::EngineGrid,
            RelationKind::WarmDelta,
        ]
    }

    /// Stable name used in CLI flags, JSON summaries and regression files.
    pub fn name(self) -> &'static str {
        match self {
            RelationKind::Rename => "rename",
            RelationKind::Scale => "scale",
            RelationKind::Monotone => "monotone",
            RelationKind::Redundant => "redundant",
            RelationKind::EngineGrid => "engine-grid",
            RelationKind::WarmDelta => "warm-delta",
        }
    }

    /// Inverse of [`RelationKind::name`].
    pub fn parse(s: &str) -> Option<RelationKind> {
        RelationKind::all().into_iter().find(|r| r.name() == s)
    }
}

/// What one solve of one instance concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Proven optimal objective value.
    Cost(i64),
    /// No feasible allocation.
    Infeasible,
    /// Conflict budget exhausted — no verdict, the check is skipped.
    Skip(String),
}

/// Solves `spec` end to end. Budget exhaustion maps to [`Outcome::Skip`];
/// validation/certification failures and objective errors are hard errors
/// (they indicate a solver or generator bug, not an expensive instance).
pub fn solve_spec(spec: &InstanceSpec, opts: &SolveOptions) -> Result<Outcome, String> {
    let (arch, tasks) = spec.build()?;
    let optimizer = Optimizer::new(&arch, &tasks).with_options(opts.clone());
    match optimizer.minimize(&spec.objective.to_objective()) {
        Ok(report) => Ok(Outcome::Cost(report.cost)),
        Err(OptError::Infeasible) => Ok(Outcome::Infeasible),
        Err(OptError::Budget { .. }) => Ok(Outcome::Skip("conflict budget".into())),
        Err(e) => Err(format!("pipeline error: {e:?}")),
    }
}

/// Checks one relation on one instance. `Ok(true)` = relation held,
/// `Ok(false)` = skipped (budget), `Err` = violation (the shrinkable kind).
pub fn check_relation(
    kind: RelationKind,
    spec: &InstanceSpec,
    seed: u64,
    paranoid: bool,
) -> Result<bool, String> {
    let opts = base_options(paranoid);
    match kind {
        RelationKind::Rename => check_rename(spec, seed, &opts),
        RelationKind::Scale => check_scale(spec, seed, &opts),
        RelationKind::Monotone => check_monotone(spec, seed, &opts),
        RelationKind::Redundant => check_redundant(spec, &opts),
        RelationKind::EngineGrid => check_engine_grid(spec, &opts),
        RelationKind::WarmDelta => check_warm_delta(spec, seed, &opts),
    }
}

fn both(
    a: Result<Outcome, String>,
    b: Result<Outcome, String>,
) -> Result<Option<(Outcome, Outcome)>, String> {
    match (a?, b?) {
        (Outcome::Skip(_), _) | (_, Outcome::Skip(_)) => Ok(None),
        (x, y) => Ok(Some((x, y))),
    }
}

// ---------------------------------------------------------------------
// rename
// ---------------------------------------------------------------------

fn random_perm(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

fn invert(p: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; p.len()];
    for (new, &old) in p.iter().enumerate() {
        inv[old] = new;
    }
    inv
}

/// Permutes every declaration list, remaps all cross-references, and
/// renames everything — a pure relabeling of the instance.
pub fn permuted_spec(spec: &InstanceSpec, rng: &mut SmallRng) -> InstanceSpec {
    let ord_e = random_perm(spec.ecus.len(), rng);
    let ord_m = random_perm(spec.media.len(), rng);
    let ord_t = random_perm(spec.tasks.len(), rng);
    let (inv_e, inv_m, inv_t) = (invert(&ord_e), invert(&ord_m), invert(&ord_t));

    let ecus = ord_e
        .iter()
        .enumerate()
        .map(|(new, &old)| {
            let mut e = spec.ecus[old].clone();
            e.name = format!("ecu_{new}");
            e
        })
        .collect();
    let media = ord_m
        .iter()
        .enumerate()
        .map(|(new, &old)| {
            let mut m = spec.media[old].clone();
            m.name = format!("net_{new}");
            for mem in &mut m.members {
                *mem = inv_e[*mem];
            }
            m
        })
        .collect();
    let tasks = ord_t
        .iter()
        .enumerate()
        .map(|(new, &old)| {
            let mut t = spec.tasks[old].clone();
            t.name = format!("job_{new}");
            for (e, _) in &mut t.wcet {
                *e = inv_e[*e];
            }
            t.wcet.reverse(); // declaration order of the WCET table
            for m in &mut t.messages {
                m.to = inv_t[m.to];
            }
            t.messages.reverse(); // declaration order of the send list
            for s in &mut t.separation {
                *s = inv_t[*s];
            }
            t
        })
        .collect();
    let objective = match spec.objective {
        ObjectiveSpec::Trt(i) => ObjectiveSpec::Trt(inv_m[i]),
        ObjectiveSpec::BusLoad(i) => ObjectiveSpec::BusLoad(inv_m[i]),
        other => other,
    };
    InstanceSpec {
        ecus,
        media,
        tasks,
        objective,
    }
}

fn check_rename(spec: &InstanceSpec, seed: u64, opts: &SolveOptions) -> Result<bool, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x72656e616d65);
    let renamed = permuted_spec(spec, &mut rng);
    let Some((base, xfrm)) = both(solve_spec(spec, opts), solve_spec(&renamed, opts))? else {
        return Ok(false);
    };
    if base != xfrm {
        return Err(format!(
            "renaming changed the outcome: base {base:?}, renamed {xfrm:?}"
        ));
    }
    Ok(true)
}

// ---------------------------------------------------------------------
// scale
// ---------------------------------------------------------------------

/// Multiplies every time-dimensioned quantity by `k` (message *sizes* are
/// bytes and stay put — the scaled per-byte cost carries the factor).
pub fn scaled_spec(spec: &InstanceSpec, k: u64) -> InstanceSpec {
    let mut s = spec.clone();
    for t in &mut s.tasks {
        t.period *= k;
        t.deadline *= k;
        t.jitter *= k;
        for (_, w) in &mut t.wcet {
            *w *= k;
        }
        for m in &mut t.messages {
            m.deadline *= k;
        }
    }
    for m in &mut s.media {
        m.frame_overhead *= k;
        m.per_byte *= k;
        if let Some(slots) = &mut m.tdma_slots {
            for slot in slots {
                *slot *= k;
            }
        }
    }
    s
}

fn check_scale(spec: &InstanceSpec, seed: u64, opts: &SolveOptions) -> Result<bool, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7363616c65);
    let k: u64 = rng.gen_range(2..=4);
    let scaled = scaled_spec(spec, k);
    // The clock-dimensioned *options* scale with the instance.
    let scaled_opts = SolveOptions {
        gateway_service: opts.gateway_service * k,
        max_slot: opts.max_slot * k,
        ..opts.clone()
    };
    let Some((base, xfrm)) = both(solve_spec(spec, opts), solve_spec(&scaled, &scaled_opts))?
    else {
        return Ok(false);
    };
    if !spec.objective.is_time_valued() {
        // Slot tables are fixed instance data here (slot *variables* exist
        // only under TRT objectives), so scaling is a bijection on
        // configurations: permille objectives are ratios of scaled
        // quantities and feasibility is preserved — exact equality.
        if base != xfrm {
            return Err(format!(
                "x{k} time scaling changed the outcome: base {base:?}, scaled {xfrm:?}"
            ));
        }
        return Ok(true);
    }
    // TRT objectives turn slot tables into decision variables whose unit
    // granularity does not scale: any base-optimal slot table maps to a
    // k-scaled feasible one, so the scaled optimum is at most k·base — but
    // the finer relative granularity may do strictly better.
    match (&base, &xfrm) {
        (Outcome::Cost(c), Outcome::Cost(cs)) => {
            let bound = k as i64 * *c;
            if *cs > bound {
                return Err(format!(
                    "x{k} time scaling worsened the optimum: base {c}, scaled {cs} > bound {bound}"
                ));
            }
        }
        (Outcome::Cost(c), Outcome::Infeasible) => {
            return Err(format!(
                "x{k} time scaling lost feasibility (base optimum {c})"
            ));
        }
        // Base infeasible: the finer scaled granularity may legitimately
        // admit a solution, so nothing is implied.
        (Outcome::Infeasible, _) => {}
        (Outcome::Skip(_), _) | (_, Outcome::Skip(_)) => unreachable!("filtered by both()"),
    }
    Ok(true)
}

// ---------------------------------------------------------------------
// monotone
// ---------------------------------------------------------------------

/// Applies one optimum-non-decreasing tightening chosen by `rng`; returns
/// the mutated spec and a description.
pub fn tightened_spec(spec: &InstanceSpec, rng: &mut SmallRng) -> (InstanceSpec, String) {
    let mut s = spec.clone();
    let with_messages: Vec<usize> = (0..s.tasks.len())
        .filter(|&t| !s.tasks[t].messages.is_empty())
        .collect();
    // Raising a WCET shrinks the feasible set and weakly raises every
    // other objective's value, but the utilization *spread* can
    // legitimately drop when a lightly-loaded ECU gains load — WCET bumps
    // are unsound there. Deadline tightening and message growth only
    // shrink feasibility, so they are monotone for every objective.
    let allow_wcet = !matches!(spec.objective, ObjectiveSpec::Spread);
    let mut choices: Vec<u32> = vec![2];
    if allow_wcet {
        choices.push(0);
    }
    if !with_messages.is_empty() {
        choices.push(1);
    }
    let choice = choices[rng.gen_range(0..choices.len())];
    if choice == 0 {
        let t = rng.gen_range(0..s.tasks.len());
        let e = rng.gen_range(0..s.tasks[t].wcet.len());
        let bump: u64 = rng.gen_range(1..=5);
        s.tasks[t].wcet[e].1 += bump;
        let what = format!("wcet of task {t} on ecu {} += {bump}", s.tasks[t].wcet[e].0);
        (s, what)
    } else if choice == 1 {
        let t = with_messages[rng.gen_range(0..with_messages.len())];
        let m = rng.gen_range(0..s.tasks[t].messages.len());
        let bump: u32 = rng.gen_range(1..=4);
        s.tasks[t].messages[m].size += bump;
        let what = format!("size of message {m} of task {t} += {bump}");
        (s, what)
    } else {
        let t = rng.gen_range(0..s.tasks.len());
        let d = s.tasks[t].deadline;
        s.tasks[t].deadline = (d - rng.gen_range(1..=d)).max(1);
        let what = format!("deadline of task {t}: {d} -> {}", s.tasks[t].deadline);
        (s, what)
    }
}

fn check_monotone(spec: &InstanceSpec, seed: u64, opts: &SolveOptions) -> Result<bool, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6d6f6e6f);
    let (tightened, what) = tightened_spec(spec, &mut rng);
    let Some((base, xfrm)) = both(solve_spec(spec, opts), solve_spec(&tightened, opts))? else {
        return Ok(false);
    };
    match (&base, &xfrm) {
        (Outcome::Cost(c), Outcome::Cost(ct)) if ct < c => Err(format!(
            "tightening ({what}) improved the optimum: {c} -> {ct}"
        )),
        (Outcome::Infeasible, Outcome::Cost(ct)) => Err(format!(
            "tightening ({what}) made an infeasible instance feasible (cost {ct})"
        )),
        _ => Ok(true),
    }
}

// ---------------------------------------------------------------------
// redundant
// ---------------------------------------------------------------------

/// Adds constraints that provably cannot exclude any feasible allocation:
/// a separation between two tasks whose placement permission sets are
/// already disjoint, and per-ECU memory capacities exceeding the *total*
/// task memory (so any subset of tasks fits anywhere).
pub fn with_redundant_constraints(spec: &InstanceSpec) -> InstanceSpec {
    let mut s = spec.clone();
    'outer: for i in 0..s.tasks.len() {
        for j in (i + 1)..s.tasks.len() {
            let pi: Vec<usize> = s.tasks[i].wcet.iter().map(|&(e, _)| e).collect();
            let disjoint = s.tasks[j].wcet.iter().all(|&(e, _)| !pi.contains(&e));
            if disjoint && !s.tasks[i].separation.contains(&j) {
                s.tasks[i].separation.push(j);
                break 'outer;
            }
        }
    }
    let total: u64 = s.tasks.iter().map(|t| t.memory).sum();
    for e in &mut s.ecus {
        if e.memory.is_none() {
            e.memory = Some(total + 1);
        }
    }
    s
}

fn check_redundant(spec: &InstanceSpec, opts: &SolveOptions) -> Result<bool, String> {
    let constrained = with_redundant_constraints(spec);
    let Some((base, xfrm)) = both(solve_spec(spec, opts), solve_spec(&constrained, opts))? else {
        return Ok(false);
    };
    if base != xfrm {
        return Err(format!(
            "redundant constraints changed the outcome: base {base:?}, constrained {xfrm:?}"
        ));
    }
    Ok(true)
}

// ---------------------------------------------------------------------
// engine-grid
// ---------------------------------------------------------------------

fn check_engine_grid(spec: &InstanceSpec, opts: &SolveOptions) -> Result<bool, String> {
    // Ground truth: an incremental single search with full certification
    // (DRAT-checked window refutations + independent witness replay).
    let ground_opts = SolveOptions {
        certify: true,
        ..opts.clone()
    };
    let ground = match solve_spec(spec, &ground_opts)? {
        Outcome::Skip(_) => return Ok(false),
        o => o,
    };
    let variants: Vec<(&str, SolveOptions)> = vec![
        (
            "fresh",
            SolveOptions {
                mode: BinSearchMode::Fresh,
                ..opts.clone()
            },
        ),
        (
            "encoder-opt-off",
            SolveOptions {
                encoder_opt: EncoderOpt::none(),
                ..opts.clone()
            },
        ),
        (
            "legacy-engine",
            SolveOptions {
                search: SearchEngine::legacy(),
                ..opts.clone()
            },
        ),
        (
            "portfolio",
            SolveOptions {
                strategy: Strategy::Portfolio {
                    workers: 2,
                    deterministic: true,
                },
                ..opts.clone()
            },
        ),
        (
            "window",
            SolveOptions {
                strategy: Strategy::WindowSearch {
                    workers: 2,
                    deterministic: true,
                },
                ..opts.clone()
            },
        ),
    ];
    let mut checked_any = false;
    for (name, vopts) in variants {
        match solve_spec(spec, &vopts)? {
            Outcome::Skip(_) => continue,
            v => {
                if v != ground {
                    return Err(format!(
                        "engine disagreement: certified ground truth {ground:?}, \
                         variant '{name}' {v:?}"
                    ));
                }
                checked_any = true;
            }
        }
    }
    Ok(checked_any)
}

// ---------------------------------------------------------------------
// warm-delta
// ---------------------------------------------------------------------

/// Derives a delta chain valid for `spec`, together with the equivalent
/// direct spec mutation (ground truth for the cold re-solve).
fn random_deltas(spec: &InstanceSpec, rng: &mut SmallRng) -> (Vec<InstanceDelta>, InstanceSpec) {
    let mut mutated = spec.clone();
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..=2u32) {
        let t = rng.gen_range(0..mutated.tasks.len());
        let task = mutated.tasks[t].name.clone();
        match rng.gen_range(0..3u32) {
            0 => {
                let e = rng.gen_range(0..mutated.tasks[t].wcet.len());
                let (ecu_idx, _) = mutated.tasks[t].wcet[e];
                let wcet: u64 = rng.gen_range(1..=15);
                mutated.tasks[t].wcet[e].1 = wcet;
                ops.push(InstanceDelta::SetWcet {
                    task,
                    ecu: mutated.ecus[ecu_idx].name.clone(),
                    wcet,
                });
            }
            1 => {
                let deadline: u64 = rng.gen_range(1..=mutated.tasks[t].period);
                mutated.tasks[t].deadline = deadline;
                ops.push(InstanceDelta::SetDeadline { task, deadline });
            }
            _ => {
                if mutated.tasks[t].wcet.len() < 2 {
                    continue; // forbidding the last ECU would empty π
                }
                let e = rng.gen_range(0..mutated.tasks[t].wcet.len());
                let (ecu_idx, _) = mutated.tasks[t].wcet.remove(e);
                ops.push(InstanceDelta::ForbidEcu {
                    task,
                    ecu: mutated.ecus[ecu_idx].name.clone(),
                });
            }
        }
    }
    (ops, mutated)
}

fn check_warm_delta(spec: &InstanceSpec, seed: u64, opts: &SolveOptions) -> Result<bool, String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7761726d);
    let (ops, mutated) = random_deltas(spec, &mut rng);
    if ops.is_empty() {
        return Ok(false);
    }
    let objective = spec.objective.to_objective();

    // Cold ground truth for the mutated instance.
    let cold = match solve_spec(&mutated, opts)? {
        Outcome::Skip(_) => return Ok(false),
        o => o,
    };

    // Path 1: the core warm engine — solve the base, apply the deltas,
    // re-solve on the retained solver state.
    let (arch, tasks) = spec.build()?;
    let mut engine = WarmEngine::new(opts.minimize_options());
    let base_warm = Optimizer::new(&arch, &tasks)
        .with_options(opts.clone())
        .minimize_warm(&objective, &mut engine, None);
    match base_warm {
        Ok(_) | Err(OptError::Infeasible) => {}
        Err(OptError::Budget { .. }) => return Ok(false),
        Err(e) => return Err(format!("warm base solve failed: {e:?}")),
    }
    let (arch2, mut tasks2) = (arch.clone(), tasks.clone());
    apply_deltas(&arch2, &mut tasks2, &ops).map_err(|e| format!("delta chain rejected: {e:?}"))?;
    let warm = match Optimizer::new(&arch2, &tasks2)
        .with_options(opts.clone())
        .minimize_warm(&objective, &mut engine, None)
    {
        Ok((report, _)) => Outcome::Cost(report.cost),
        Err(OptError::Infeasible) => Outcome::Infeasible,
        Err(OptError::Budget { .. }) => return Ok(false),
        Err(e) => return Err(format!("warm delta re-solve failed: {e:?}")),
    };
    if warm != cold {
        return Err(format!(
            "warm delta re-solve diverged from cold solve: warm {warm:?}, cold {cold:?} \
             (deltas: {ops:?})"
        ));
    }

    // Path 2: the service request path — fingerprint registration, delta
    // resolution against the cached base, warm re-solve by the worker.
    let service = Service::new(ServiceConfig {
        workers: 1,
        solve: opts.clone(),
        ..ServiceConfig::default()
    });
    let base_resp = service.handle(Request::Solve {
        instance: Instance {
            arch: arch.clone(),
            tasks: tasks.clone(),
        },
        objective: objective.clone(),
        timeout_ms: None,
    });
    let result = (|| {
        let fingerprint = match &base_resp {
            Response::Result(r) => match &r.outcome {
                JobOutcome::Optimal { .. } | JobOutcome::Infeasible => r.fingerprint.clone(),
                JobOutcome::Budget { .. } | JobOutcome::Timeout { .. } => return Ok(false),
                JobOutcome::Error { message } => {
                    return Err(format!("service base solve errored: {message}"))
                }
            },
            other => return Err(format!("service base solve rejected: {other:?}")),
        };
        let delta_resp = service.handle(Request::Delta {
            base: Some(fingerprint),
            ops: ops.clone(),
            objective: None,
            timeout_ms: None,
        });
        let svc = match &delta_resp {
            Response::Result(r) => match &r.outcome {
                JobOutcome::Optimal { cost, .. } => Outcome::Cost(*cost),
                JobOutcome::Infeasible => Outcome::Infeasible,
                JobOutcome::Budget { .. } | JobOutcome::Timeout { .. } => return Ok(false),
                JobOutcome::Error { message } => {
                    return Err(format!("service delta re-solve errored: {message}"))
                }
            },
            other => return Err(format!("service delta rejected: {other:?}")),
        };
        if svc != cold {
            return Err(format!(
                "service delta re-solve diverged from cold solve: service {svc:?}, \
                 cold {cold:?} (deltas: {ops:?})"
            ));
        }
        Ok(true)
    })();
    service.shutdown();
    result
}
