//! Differential validation of bounded variable elimination: on random
//! instances the solver with elimination on must give the same verdict as
//! with it off, every returned model — reconstructed through the
//! elimination stack — must satisfy the *original* formula, and under
//! proof logging the trace must still verify. Plus the freeze/melt
//! regression contract: frozen and assumed variables are never eliminated,
//! and referencing an eliminated variable transparently restores it.

use optalloc_sat::{check_proof, PbOp, PbTerm, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random problem over `n_vars` variables in plain data form, consumed
/// by both the solver and the brute-force oracle.
#[derive(Debug, Clone)]
struct Problem {
    n_vars: usize,
    /// Clauses as signed var indices (1-based, negative = negated).
    clauses: Vec<Vec<i32>>,
    /// PB constraints: (terms of (signed var, coef), op, bound).
    pbs: Vec<(Vec<(i32, i64)>, PbOp, i64)>,
}

fn lit_of(vars: &[Var], signed: i32) -> optalloc_sat::Lit {
    let v = vars[signed.unsigned_abs() as usize - 1];
    v.lit(signed > 0)
}

/// Evaluates the problem under the assignment given by bitmask `m`.
fn eval(p: &Problem, m: u32) -> bool {
    let val = |signed: i32| -> bool {
        let bit = m >> (signed.unsigned_abs() - 1) & 1 == 1;
        if signed > 0 {
            bit
        } else {
            !bit
        }
    };
    for c in &p.clauses {
        if !c.iter().any(|&l| val(l)) {
            return false;
        }
    }
    for (terms, op, bound) in &p.pbs {
        let sum: i64 = terms.iter().map(|&(l, a)| if val(l) { a } else { 0 }).sum();
        let ok = match op {
            PbOp::Ge => sum >= *bound,
            PbOp::Le => sum <= *bound,
            PbOp::Eq => sum == *bound,
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Brute-force satisfiability under assumptions (signed var indices).
fn brute_force(p: &Problem, assumptions: &[i32]) -> bool {
    (0u32..1 << p.n_vars).any(|m| {
        assumptions.iter().all(|&a| {
            let bit = m >> (a.unsigned_abs() - 1) & 1 == 1;
            if a > 0 {
                bit
            } else {
                !bit
            }
        }) && eval(p, m)
    })
}

fn build_solver(p: &Problem, elim: bool, proof: bool) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    s.config.elim = elim;
    s.config.proof = proof;
    let vars: Vec<Var> = (0..p.n_vars).map(|_| s.new_var()).collect();
    add_problem(&mut s, &vars, p);
    (s, vars)
}

fn add_problem(s: &mut Solver, vars: &[Var], p: &Problem) {
    for c in &p.clauses {
        let lits: Vec<_> = c.iter().map(|&l| lit_of(vars, l)).collect();
        if !s.add_clause(&lits) {
            return;
        }
    }
    for (terms, op, bound) in &p.pbs {
        let ts: Vec<PbTerm> = terms
            .iter()
            .map(|&(l, a)| PbTerm::new(lit_of(vars, l), a))
            .collect();
        if !s.add_pb(&ts, *op, *bound) {
            return;
        }
    }
}

/// The solver's model read back over *all original* variables.
fn model_mask(s: &Solver, vars: &[Var]) -> u32 {
    let mut mask = 0u32;
    for (i, v) in vars.iter().enumerate() {
        if s.model_value(v.positive()) {
            mask |= 1 << i;
        }
    }
    mask
}

fn signed_var(n_vars: usize) -> impl Strategy<Value = i32> {
    (1..=n_vars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)])
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (4usize..=9).prop_flat_map(|n_vars| {
        let clause = proptest::collection::vec(signed_var(n_vars), 1..=4);
        let clauses = proptest::collection::vec(clause, 0..14);
        let term = (signed_var(n_vars), -4i64..=4);
        let pb = (
            proptest::collection::vec(term, 1..=4),
            prop_oneof![Just(PbOp::Ge), Just(PbOp::Le), Just(PbOp::Eq)],
            -6i64..=6,
        );
        let pbs = proptest::collection::vec(pb, 0..3);
        (Just(n_vars), clauses, pbs).prop_map(|(n_vars, clauses, pbs)| Problem {
            n_vars,
            clauses,
            pbs,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Elimination on/off and proof on/off all agree with brute force, and
    /// every Sat model — extended through the reconstruction stack — is
    /// checked against the original clause set, not the simplified one.
    #[test]
    fn reconstructed_models_satisfy_the_original_formula(p in arb_problem()) {
        let expected = brute_force(&p, &[]);
        for (elim, proof) in [(false, false), (true, false), (true, true)] {
            let (mut s, vars) = build_solver(&p, elim, proof);
            let verdict = s.solve(&[]);
            prop_assert_eq!(
                verdict,
                if expected { SolveResult::Sat } else { SolveResult::Unsat },
                "elim={} proof={}", elim, proof
            );
            if verdict == SolveResult::Sat {
                prop_assert!(
                    eval(&p, model_mask(&s, &vars)),
                    "elim={} proof={}: reconstructed model violates the original formula",
                    elim, proof
                );
            }
            if proof {
                // The trace is allocated lazily: a formula whose every
                // constraint folds away (empty, or trivially-true PBs)
                // logs nothing and legitimately has no proof to take.
                if let Some(log) = s.take_proof() {
                    check_proof(&log)
                        .unwrap_or_else(|e| panic!("elim trace rejected: {e}"));
                }
            }
        }
    }

    /// Incremental sessions: after the first solve, enough duplicate input
    /// clauses arrive to trigger the bounded inprocessing re-run, then a
    /// second batch of *new* constraints and an assumption-driven re-solve.
    /// Verdicts and models must still track brute force over the combined
    /// formula — including variables eliminated in round one and referenced
    /// again (hence restored) in round two.
    #[test]
    fn incremental_inprocessing_stays_sound(
        p in arb_problem(),
        extra in proptest::collection::vec(
            proptest::collection::vec((1i32..=9, any::<bool>()), 1..=3), 1..4),
        assume_raw in (1i32..=9, any::<bool>()),
    ) {
        let (mut s, vars) = build_solver(&p, true, false);
        let first = s.solve(&[]);
        prop_assert_eq!(
            first == SolveResult::Sat,
            brute_force(&p, &[]),
            "first solve diverged"
        );

        // Re-adding the original clauses changes nothing logically but
        // counts as new input, pushing the session over the inprocessing
        // threshold (64 new clauses).
        let mut combined = p.clone();
        for _ in 0..(64 / p.clauses.len().max(1) + 1) {
            for c in &p.clauses {
                let lits: Vec<_> = c.iter().map(|&l| lit_of(&vars, l)).collect();
                s.add_clause(&lits);
                combined.clauses.push(c.clone());
            }
        }
        // Genuinely new clauses, possibly over eliminated variables.
        for c in &extra {
            let signed: Vec<i32> = c
                .iter()
                .map(|&(v, pos)| {
                    let v = (v - 1) % p.n_vars as i32 + 1;
                    if pos { v } else { -v }
                })
                .collect();
            let lits: Vec<_> = signed.iter().map(|&l| lit_of(&vars, l)).collect();
            s.add_clause(&lits);
            combined.clauses.push(signed);
        }
        let assume = {
            let v = (assume_raw.0 - 1) % p.n_vars as i32 + 1;
            if assume_raw.1 { v } else { -v }
        };
        let verdict = s.solve(&[lit_of(&vars, assume)]);
        let expected = brute_force(&combined, &[assume]);
        prop_assert_eq!(
            verdict,
            if expected { SolveResult::Sat } else { SolveResult::Unsat },
            "incremental verdict diverged"
        );
        if verdict == SolveResult::Sat {
            let m = model_mask(&s, &vars);
            prop_assert!(eval(&combined, m), "incremental model violates the formula");
            prop_assert!(
                eval(&p, m),
                "incremental model violates the original round-one formula"
            );
        }
    }
}

/// A Tseitin AND gate `x ↔ a ∧ b` plus `a ∨ b`: the gate variable `x`
/// resolves away with zero resolvents (both products are tautologies), so
/// it is the canonical elimination candidate.
fn gate_instance() -> (Solver, Var, Var, Var) {
    let mut s = Solver::new();
    let x = s.new_var();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[x.negative(), a.positive()]);
    s.add_clause(&[x.negative(), b.positive()]);
    s.add_clause(&[x.positive(), a.negative(), b.negative()]);
    s.add_clause(&[a.positive(), b.positive()]);
    (s, x, a, b)
}

#[test]
fn gate_variables_are_eliminated_by_default() {
    let (mut s, x, a, b) = gate_instance();
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(s.is_eliminated(x), "zero-resolvent gate var must eliminate");
    assert!(s.stats.elim_vars >= 1);
    // The model is still extended over x and respects x ↔ a ∧ b.
    let (xv, av, bv) = (
        s.model_value(x.positive()),
        s.model_value(a.positive()),
        s.model_value(b.positive()),
    );
    assert_eq!(xv, av && bv, "reconstructed gate value inconsistent");
}

#[test]
fn frozen_variables_are_never_eliminated() {
    let (mut s, x, _, _) = gate_instance();
    s.freeze_var(x);
    assert!(s.is_frozen(x));
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(!s.is_eliminated(x), "frozen var was eliminated");
    // Melt and the flag clears; the already-run pass is not redone, so the
    // variable stays resident until the next inprocessing round.
    s.melt_var(x);
    assert!(!s.is_frozen(x));
    assert!(!s.is_eliminated(x));
}

#[test]
fn assumption_variables_survive_the_pass() {
    let (mut s, x, a, _) = gate_instance();
    // Assuming x during the first (preprocessing) solve must keep it out
    // of elimination for that pass — it is needed to answer the query.
    assert_eq!(s.solve(&[x.positive()]), SolveResult::Sat);
    assert!(!s.is_eliminated(x), "assumed var was eliminated");
    assert!(s.model_value(x.positive()));
    assert!(s.model_value(a.positive()), "x forces a");
}

#[test]
fn referencing_an_eliminated_var_restores_it() {
    let (mut s, x, a, b) = gate_instance();
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(s.is_eliminated(x));
    // A new input clause over x melts it back in…
    assert!(s.add_clause(&[x.positive()]));
    assert!(!s.is_eliminated(x), "restore-on-reuse did not trigger");
    assert!(s.stats.elim_restored >= 1);
    // …and the strengthened instance forces x, hence a and b.
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(s.model_value(x.positive()));
    assert!(s.model_value(a.positive()));
    assert!(s.model_value(b.positive()));
}

#[test]
fn eliminated_assumptions_are_restored_at_solve_entry() {
    let (mut s, x, _, b) = gate_instance();
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(s.is_eliminated(x));
    // Solving under ¬b with x assumed: x must be restored first, because
    // F′ ∧ x and F ∧ x are not equisatisfiable when x was distributed out.
    assert_eq!(
        s.solve(&[x.positive(), b.negative()]),
        SolveResult::Unsat,
        "x forces b; assuming ¬b must refute"
    );
    assert!(!s.is_eliminated(x));
}
