//! Arena-allocated clause storage.
//!
//! Clauses live in one flat `Vec<u32>` to keep them contiguous in memory and
//! cheap to allocate during learning. A [`ClauseRef`] is an offset into that
//! arena. Each clause is laid out as:
//!
//! ```text
//! [ header ][ activity(f32 bits) ][ lbd ][ meta ][ lit_0 ] ... [ lit_{n-1} ]
//! ```
//!
//! where the header packs the length and a `learnt` flag, and `meta` packs the
//! learned-clause tier, a "vivified" flag, and a recency stamp (the conflict
//! count when the clause last participated in a conflict). Deleted clauses are
//! tombstoned and reclaimed by [`ClauseDb::collect`], which compacts the
//! arena and reports the relocation map so watch lists can be rebuilt.

use crate::types::Lit;

/// Reference to a clause in the arena (an offset into the backing vector).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

const LEARNT_BIT: u32 = 1 << 31;
const DELETED_BIT: u32 = 1 << 30;
const LEN_MASK: u32 = (1 << 30) - 1;

/// Words of per-clause metadata preceding the literals.
const HEADER_WORDS: usize = 4;

// Meta-word layout: bits 31..30 tier, bit 29 vivified, bits 28..0 touch stamp.
const TIER_SHIFT: u32 = 30;
const VIVIFIED_BIT: u32 = 1 << 29;
const TOUCH_MASK: u32 = (1 << 29) - 1;

/// Quality tier of a learned clause (see `docs/SOLVER.md`).
///
/// `Core` clauses (glue, LBD ≤ 2) are kept forever, `Mid` clauses survive
/// reductions while recently used, and `Local` clauses are aggressively
/// reduced. Input clauses ignore their tier.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Tier {
    /// Glue clauses, never deleted.
    Core = 0,
    /// Mid-LBD clauses, demoted to `Local` when idle for too long.
    Mid = 1,
    /// Everything else; worst half deleted at each reduction.
    Local = 2,
}

/// Flat arena holding every clause in the solver.
#[derive(Default)]
pub struct ClauseDb {
    data: Vec<u32>,
    /// Number of `u32` words wasted by tombstoned clauses, used to decide
    /// when compaction pays off.
    pub(crate) wasted: usize,
}

impl ClauseDb {
    /// Creates an empty arena.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Allocates a clause containing `lits`; `learnt` marks conflict-learned
    /// clauses, which participate in activity-based deletion.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are not stored");
        let cref = ClauseRef(self.data.len() as u32);
        let header = lits.len() as u32 | if learnt { LEARNT_BIT } else { 0 };
        self.data.push(header);
        self.data.push(0f32.to_bits());
        self.data.push(lits.len() as u32); // initial LBD upper bound
        self.data.push((Tier::Local as u32) << TIER_SHIFT);
        self.data.extend(lits.iter().map(|l| l.0));
        cref
    }

    #[inline]
    fn base(&self, cref: ClauseRef) -> usize {
        cref.0 as usize
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.data[self.base(cref)] & LEN_MASK) as usize
    }

    /// `true` if the clause was learned from a conflict.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[self.base(cref)] & LEARNT_BIT != 0
    }

    /// `true` if the clause has been tombstoned.
    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.data[self.base(cref)] & DELETED_BIT != 0
    }

    /// Tombstones the clause; its storage is reclaimed at the next
    /// [`ClauseDb::collect`].
    pub fn delete(&mut self, cref: ClauseRef) {
        let b = self.base(cref);
        debug_assert!(self.data[b] & DELETED_BIT == 0);
        self.data[b] |= DELETED_BIT;
        self.wasted += self.len(cref) + HEADER_WORDS;
    }

    /// The literals of the clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let b = self.base(cref);
        let len = self.len(cref);
        // SAFETY: `Lit` is a transparent wrapper over `u32` with identical
        // layout, and the range is in bounds by construction.
        unsafe { std::mem::transmute(&self.data[b + HEADER_WORDS..b + HEADER_WORDS + len]) }
    }

    /// Mutable access to the literals of the clause.
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let b = self.base(cref);
        let len = self.len(cref);
        // SAFETY: as in `lits`.
        unsafe { std::mem::transmute(&mut self.data[b + HEADER_WORDS..b + HEADER_WORDS + len]) }
    }

    /// Clause activity (bumped when the clause participates in a conflict).
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[self.base(cref) + 1])
    }

    /// Overwrites the clause activity.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, act: f32) {
        let b = self.base(cref);
        self.data[b + 1] = act.to_bits();
    }

    /// Literal-block distance recorded when the clause was learned (or last
    /// updated); lower means more valuable.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[self.base(cref) + 2]
    }

    /// Updates the stored literal-block distance.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let b = self.base(cref);
        self.data[b + 2] = lbd;
    }

    /// Tier of a learned clause.
    #[inline]
    pub fn tier(&self, cref: ClauseRef) -> Tier {
        match self.data[self.base(cref) + 3] >> TIER_SHIFT {
            0 => Tier::Core,
            1 => Tier::Mid,
            _ => Tier::Local,
        }
    }

    /// Moves a learned clause to `tier`.
    #[inline]
    pub fn set_tier(&mut self, cref: ClauseRef, tier: Tier) {
        let b = self.base(cref) + 3;
        self.data[b] = (self.data[b] & !(3 << TIER_SHIFT)) | ((tier as u32) << TIER_SHIFT);
    }

    /// Conflict count the last time the clause was used in conflict analysis
    /// (saturates at 2^29-1).
    #[inline]
    pub fn touch(&self, cref: ClauseRef) -> u64 {
        (self.data[self.base(cref) + 3] & TOUCH_MASK) as u64
    }

    /// Records the conflict count of the clause's most recent use.
    #[inline]
    pub fn set_touch(&mut self, cref: ClauseRef, conflicts: u64) {
        let b = self.base(cref) + 3;
        let stamp = (conflicts.min(TOUCH_MASK as u64)) as u32;
        self.data[b] = (self.data[b] & !TOUCH_MASK) | stamp;
    }

    /// `true` once the clause has been through a vivification attempt.
    #[inline]
    pub fn is_vivified(&self, cref: ClauseRef) -> bool {
        self.data[self.base(cref) + 3] & VIVIFIED_BIT != 0
    }

    /// Marks the clause as vivified so it is not re-examined.
    #[inline]
    pub fn set_vivified(&mut self, cref: ClauseRef) {
        let b = self.base(cref) + 3;
        self.data[b] |= VIVIFIED_BIT;
    }

    /// Iterates over the refs of all live (non-deleted) clauses.
    pub fn iter_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        ClauseIter { db: self, pos: 0 }
    }

    /// Words currently used by the arena (live + tombstoned).
    pub fn arena_len(&self) -> usize {
        self.data.len()
    }

    /// Compacts the arena, dropping tombstoned clauses. Returns the
    /// relocation of every surviving clause as `(old, new)` pairs; callers
    /// must remap any stored [`ClauseRef`]s (watch lists, reasons).
    pub fn collect(&mut self) -> Vec<(ClauseRef, ClauseRef)> {
        let mut relocs = Vec::new();
        let mut new_data = Vec::with_capacity(self.data.len() - self.wasted);
        let mut pos = 0usize;
        while pos < self.data.len() {
            let header = self.data[pos];
            let len = (header & LEN_MASK) as usize;
            let total = len + HEADER_WORDS;
            if header & DELETED_BIT == 0 {
                let new_ref = ClauseRef(new_data.len() as u32);
                relocs.push((ClauseRef(pos as u32), new_ref));
                new_data.extend_from_slice(&self.data[pos..pos + total]);
            }
            pos += total;
        }
        self.data = new_data;
        self.wasted = 0;
        relocs
    }
}

struct ClauseIter<'a> {
    db: &'a ClauseDb,
    pos: usize,
}

impl Iterator for ClauseIter<'_> {
    type Item = ClauseRef;
    fn next(&mut self) -> Option<ClauseRef> {
        while self.pos < self.db.data.len() {
            let header = self.db.data[self.pos];
            let len = (header & LEN_MASK) as usize;
            let cref = ClauseRef(self.pos as u32);
            self.pos += len + HEADER_WORDS;
            if header & DELETED_BIT == 0 {
                return Some(cref);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(ids: &[i32]) -> Vec<Lit> {
        ids.iter()
            .map(|&i| Var::from_index(i.unsigned_abs() as usize).lit(i > 0))
            .collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, -2, 3]), false);
        let c2 = db.alloc(&lits(&[4, -5]), true);
        assert_eq!(db.len(c1), 3);
        assert_eq!(db.len(c2), 2);
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.lits(c1), &lits(&[1, -2, 3])[..]);
        assert_eq!(db.lits(c2), &lits(&[4, -5])[..]);
    }

    #[test]
    fn activity_and_lbd_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2]), true);
        db.set_activity(c, 3.5);
        db.set_lbd(c, 7);
        assert_eq!(db.activity(c), 3.5);
        assert_eq!(db.lbd(c), 7);
    }

    #[test]
    fn tier_touch_and_vivified_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&lits(&[1, 2, 3]), true);
        assert_eq!(db.tier(c), Tier::Local);
        assert_eq!(db.touch(c), 0);
        assert!(!db.is_vivified(c));

        db.set_tier(c, Tier::Core);
        db.set_touch(c, 12345);
        db.set_vivified(c);
        assert_eq!(db.tier(c), Tier::Core);
        assert_eq!(db.touch(c), 12345);
        assert!(db.is_vivified(c));

        // Fields are independent: updating one leaves the others intact.
        db.set_tier(c, Tier::Mid);
        assert_eq!(db.touch(c), 12345);
        assert!(db.is_vivified(c));
        db.set_touch(c, u64::MAX); // saturates, must not clobber tier bits
        assert_eq!(db.tier(c), Tier::Mid);
        assert!(db.is_vivified(c));

        // LBD and activity live in separate words.
        db.set_lbd(c, 9);
        db.set_activity(c, 1.25);
        assert_eq!(db.tier(c), Tier::Mid);
        assert_eq!(db.lbd(c), 9);
        assert_eq!(db.activity(c), 1.25);
    }

    #[test]
    fn delete_and_collect_relocates() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, 2, 3]), false);
        let c2 = db.alloc(&lits(&[4, 5]), true);
        let c3 = db.alloc(&lits(&[6, 7, 8, 9]), false);
        db.delete(c2);
        assert!(db.is_deleted(c2));
        let live: Vec<_> = db.iter_refs().collect();
        assert_eq!(live, vec![c1, c3]);

        let relocs = db.collect();
        assert_eq!(relocs.len(), 2);
        assert_eq!(relocs[0].0, c1);
        let new_c3 = relocs[1].1;
        assert_eq!(db.lits(new_c3), &lits(&[6, 7, 8, 9])[..]);
        assert_eq!(db.wasted, 0);
    }

    #[test]
    fn collect_preserves_meta() {
        let mut db = ClauseDb::new();
        let c1 = db.alloc(&lits(&[1, 2]), true);
        let c2 = db.alloc(&lits(&[3, 4, 5]), true);
        db.set_tier(c2, Tier::Mid);
        db.set_touch(c2, 777);
        db.set_vivified(c2);
        db.delete(c1);
        let relocs = db.collect();
        assert_eq!(relocs.len(), 1);
        let n2 = relocs[0].1;
        assert_eq!(db.tier(n2), Tier::Mid);
        assert_eq!(db.touch(n2), 777);
        assert!(db.is_vivified(n2));
    }

    #[test]
    fn iter_skips_deleted() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), false);
        let b = db.alloc(&lits(&[3, 4]), false);
        db.delete(a);
        assert_eq!(db.iter_refs().collect::<Vec<_>>(), vec![b]);
    }
}
