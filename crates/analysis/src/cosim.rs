//! Whole-system co-simulation: preemptive fixed-priority CPUs plus bus
//! models, run over a time horizon to *observe* response times and message
//! latencies under a concrete allocation.
//!
//! This is the empirical counterpart of the analytic bounds: for a feasible
//! allocation, every observed task response must stay within the RTA fixed
//! point and every observed per-medium message latency within the local
//! deadline budget. The property tests drive random generated workloads
//! through both and compare.
//!
//! ## Fidelity notes (matching the paper's analysis model)
//!
//! * Tasks are released synchronously at `t = 0` (the critical instant) and
//!   strictly periodically afterwards.
//! * A message instance enters its first medium's queue at the sender's
//!   release time **plus the sender's worst-case response time** — i.e.
//!   message releases are periodic, exactly the premise of eq. (2)/(3).
//!   (Releasing at the actual completion instant would introduce jitter
//!   compression that the paper's jitterless eq. (1)–(3) do not model.)
//! * Priority buses follow the paper's §2 analogy literally: the bus is a
//!   *preemptive* priority server (eq. 2 is preemptive RTA over ρ values).
//! * TDMA buses rotate fixed slots; a frame transmits only inside its
//!   forwarder's slot window. Transmission is *preemptible at slot
//!   boundaries* (a frame may finish in a later window) — this is the
//!   idealization behind eq. (3), whose blocking term `⌈r/Λ⌉(Λ−λ)` models
//!   the bus as unavailable outside the own slot but fully usable inside
//!   it. Real token rings do not split frames; the paper's analysis (and
//!   hence ours) inherits the fluid-slot approximation from [3].
//! * Gateway forwarding charges `gateway_service` ticks between media.

use crate::holistic::AnalysisConfig;
use crate::task_rta::all_task_response_times;
use optalloc_model::{Allocation, Architecture, EcuId, MediumId, MediumKind, MsgId, TaskSet, Time};
use std::collections::BTreeMap;

/// Observed worst cases from one simulation run.
#[derive(Clone, Debug, Default)]
pub struct CosimOutcome {
    /// Worst observed response per task (`None` = no job finished in the
    /// horizon), indexed by task.
    pub task_worst_response: Vec<Option<Time>>,
    /// Worst observed per-medium latency (queue entry → transmission end)
    /// per (message, medium).
    pub msg_worst_latency: BTreeMap<(MsgId, MediumId), Time>,
    /// Completed jobs per task.
    pub jobs_finished: Vec<u64>,
    /// Delivered message instances.
    pub msgs_delivered: u64,
}

/// One in-flight frame instance.
#[derive(Clone, Debug)]
struct Frame {
    msg: MsgId,
    /// Index into the route's media list.
    hop: usize,
    /// Tick at which the frame entered the current medium's queue.
    entered: Time,
    /// Remaining transmission ticks on the current medium.
    remaining: Time,
    /// Forwarding ECU on the current medium.
    forwarder: EcuId,
}

/// Simulates the system for `horizon` ticks.
///
/// Precondition: the allocation is shape-valid and placements are legal
/// (use [`crate::validate`] first); unschedulable systems still simulate,
/// they just report larger observations.
pub fn cosimulate(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    config: &AnalysisConfig,
    horizon: Time,
) -> CosimOutcome {
    let n = tasks.len();
    let rta = all_task_response_times(tasks, alloc, config.task_jitter);

    // --- CPU state ---------------------------------------------------------
    // Per task: remaining work of the current job and its release tick.
    let mut job_left: Vec<Time> = vec![0; n];
    let mut job_release: Vec<Time> = vec![0; n];
    // Tasks per ECU in priority order.
    let per_ecu: Vec<Vec<usize>> = arch
        .iter_ecus()
        .map(|(pid, _)| alloc.tasks_on(pid).into_iter().map(|t| t.index()).collect())
        .collect();

    // --- message release schedule ------------------------------------------
    // Message instance k of msg m enters its first medium at
    // k·period + r_sender (constant offset ⇒ periodic arrivals).
    struct MsgSched {
        msg: MsgId,
        period: Time,
        next: Time,
    }
    let mut schedules: Vec<MsgSched> = Vec::new();
    for (mid, _) in tasks.messages() {
        if alloc.route(mid).is_colocated() {
            continue;
        }
        let period = tasks.task(mid.sender).period;
        let offset = match rta[mid.sender.index()] {
            Some(r) => r,
            None => continue, // sender unschedulable: no periodic releases
        };
        schedules.push(MsgSched {
            msg: mid,
            period,
            next: offset,
        });
    }

    // --- bus state -----------------------------------------------------------
    let mut queues: Vec<Vec<Frame>> = vec![Vec::new(); arch.num_media()];
    // Frames in gateway transit: (arrival tick at next medium, frame).
    let mut in_transit: Vec<(Time, Frame)> = Vec::new();
    let mut outcome = CosimOutcome {
        task_worst_response: vec![None; n],
        msg_worst_latency: BTreeMap::new(),
        jobs_finished: vec![0; n],
        msgs_delivered: 0,
    };

    let frame_for = |msg: MsgId, hop: usize, now: Time| -> Option<Frame> {
        let route = alloc.route(msg);
        let k = *route.media.get(hop)?;
        let med = arch.medium(k);
        let rho = med.transmission_time(tasks.message(msg).size);
        let forwarder = crate::msg_rta::forwarder(arch, alloc, msg, k)?;
        Some(Frame {
            msg,
            hop,
            entered: now,
            remaining: rho,
            forwarder,
        })
    };

    for now in 0..horizon {
        // 1. Job releases.
        for i in 0..n {
            let period = tasks.tasks[i].period;
            if now % period == 0 {
                // Previous job must be gone for the response to be
                // well-defined; overruns simply keep accumulating work.
                job_left[i] += tasks.tasks[i]
                    .wcet_on(alloc.ecu_of(optalloc_model::TaskId(i as u32)))
                    .unwrap_or(0);
                job_release[i] = now;
            }
        }

        // 2. Message releases (periodic, offset by sender worst response).
        for s in &mut schedules {
            while s.next == now {
                if let Some(f) = frame_for(s.msg, 0, now) {
                    let k = alloc.route(s.msg).media[0];
                    queues[k.index()].push(f);
                }
                s.next += s.period;
            }
        }

        // 3. Gateway transit arrivals.
        let mut still_transit = Vec::new();
        for (due, mut f) in in_transit.drain(..) {
            if due <= now {
                f.entered = now;
                let k = alloc.route(f.msg).media[f.hop];
                queues[k.index()].push(f);
            } else {
                still_transit.push((due, f));
            }
        }
        in_transit = still_transit;

        // 4. Bus service: one tick of transmission per medium.
        for (ki, med) in arch.iter_media() {
            let q = &mut queues[ki.index()];
            if q.is_empty() {
                continue;
            }
            let chosen: Option<usize> = match &med.kind {
                MediumKind::Priority => {
                    // Preemptive priority server (the paper's analogy).
                    q.iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            let da = tasks.message(a.msg).deadline;
                            let db = tasks.message(b.msg).deadline;
                            (da, a.msg).cmp(&(db, b.msg))
                        })
                        .map(|(i, _)| i)
                }
                MediumKind::Tdma { slots } => {
                    let slots = alloc.effective_slots(ki, slots);
                    let round: Time = slots.iter().sum();
                    let round = round.max(1);
                    let pos = now % round;
                    // Whose slot window is active, and how much remains?
                    let mut acc = 0;
                    let mut owner = None;
                    for (idx, &s) in slots.iter().enumerate() {
                        if pos < acc + s {
                            owner = Some((med.members[idx], acc + s - pos));
                            break;
                        }
                        acc += s;
                    }
                    owner.and_then(|(owner_ecu, _window_left)| {
                        q.iter()
                            .enumerate()
                            .filter(|(_, f)| f.forwarder == owner_ecu)
                            .min_by(|(_, a), (_, b)| {
                                let da = tasks.message(a.msg).deadline;
                                let db = tasks.message(b.msg).deadline;
                                (da, a.msg).cmp(&(db, b.msg))
                            })
                            .map(|(i, _)| i)
                    })
                }
            };
            if let Some(i) = chosen {
                q[i].remaining -= 1;
                if q[i].remaining == 0 {
                    let f = q.swap_remove(i);
                    let latency = now + 1 - f.entered;
                    let key = (f.msg, ki);
                    let w = outcome.msg_worst_latency.entry(key).or_insert(0);
                    *w = (*w).max(latency);
                    let route = alloc.route(f.msg);
                    if f.hop + 1 < route.media.len() {
                        if let Some(nf) = frame_for(f.msg, f.hop + 1, now + 1) {
                            in_transit.push((now + 1 + config.gateway_service, nf));
                        }
                    } else {
                        outcome.msgs_delivered += 1;
                    }
                }
            }
        }

        // 5. CPU service: one tick per ECU for the highest-priority pending
        //    task.
        for local in &per_ecu {
            if let Some(&i) = local.iter().find(|&&i| job_left[i] > 0) {
                job_left[i] -= 1;
                if job_left[i] == 0 {
                    let resp = now + 1 - job_release[i];
                    let w = &mut outcome.task_worst_response[i];
                    *w = Some(w.map_or(resp, |prev| prev.max(resp)));
                    outcome.jobs_finished[i] += 1;
                }
            }
        }
    }

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Allocation, Ecu, Medium, MessageRoute, Task, TaskId};

    fn two_node_can() -> (Architecture, TaskSet, Allocation) {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1));
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 50, 40, vec![(EcuId(0), 10)]).sends(TaskId(1), 4, 30));
        ts.push(Task::new("b", 50, 50, vec![(EcuId(1), 12)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        *alloc.route_mut(MsgId {
            sender: TaskId(0),
            index: 0,
        }) = MessageRoute::single_hop(optalloc_model::MediumId(0), 30);
        (arch, ts, alloc)
    }

    #[test]
    fn observed_responses_match_rta_on_simple_system() {
        let (arch, ts, alloc) = two_node_can();
        let config = AnalysisConfig::default();
        let out = cosimulate(&arch, &ts, &alloc, &config, 500);
        // Lone tasks per ECU: observed response == WCET == RTA.
        assert_eq!(out.task_worst_response, vec![Some(10), Some(12)]);
        assert!(out.jobs_finished.iter().all(|&j| j >= 9));
        // The lone frame: latency == ρ == 5.
        let key = (
            MsgId {
                sender: TaskId(0),
                index: 0,
            },
            optalloc_model::MediumId(0),
        );
        assert_eq!(out.msg_worst_latency[&key], 5);
        assert!(out.msgs_delivered >= 9);
    }

    #[test]
    fn preemption_is_observed() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1));
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("hp", 10, 10, w(3)));
        ts.push(Task::new("lp", 40, 40, w(8)));
        let alloc = Allocation::skeleton(&ts);
        let out = cosimulate(&arch, &ts, &alloc, &AnalysisConfig::default(), 400);
        // lp: r = 8 + 2·3 = 14 (RTA); the critical instant occurs at t = 0.
        assert_eq!(out.task_worst_response[1], Some(14));
        let rta = all_task_response_times(&ts, &alloc, false);
        assert_eq!(out.task_worst_response[1], rta[1]);
    }

    #[test]
    fn tdma_frame_waits_for_slot() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::tdma(
            "ring",
            vec![EcuId(0), EcuId(1)],
            vec![10, 10],
            1,
            1,
        ));
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 100, 80, vec![(EcuId(0), 5)]).sends(TaskId(1), 4, 60));
        ts.push(Task::new("b", 100, 90, vec![(EcuId(1), 5)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute::single_hop(optalloc_model::MediumId(0), 60);
        let out = cosimulate(&arch, &ts, &alloc, &AnalysisConfig::default(), 600);
        let observed = out.msg_worst_latency[&(msg, optalloc_model::MediumId(0))];
        // ρ = 5; frame enters at t = 5 (sender RTA); p0's slot covers
        // [0,10) each round, so observed = 5 (fits immediately) — but the
        // analytic bound (15, with worst-phase blocking) must dominate.
        let bound = crate::msg_rta::message_response_time(
            &arch,
            &ts,
            &alloc,
            msg,
            optalloc_model::MediumId(0),
        )
        .unwrap();
        assert!(observed <= bound, "observed {observed} > bound {bound}");
        assert!(observed >= 5);
    }

    #[test]
    fn multi_hop_crosses_gateway_with_service_delay() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_ecu(Ecu::new("gw").gateway_only());
        arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(2)], 1, 1));
        arch.push_medium(Medium::priority("k1", vec![EcuId(1), EcuId(2)], 1, 1));
        let mut ts = TaskSet::new();
        ts.push(Task::new("s", 100, 80, vec![(EcuId(0), 5)]).sends(TaskId(1), 4, 60));
        ts.push(Task::new("r", 100, 90, vec![(EcuId(1), 5)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute {
            media: vec![optalloc_model::MediumId(0), optalloc_model::MediumId(1)],
            local_deadlines: vec![25, 25],
        };
        let config = AnalysisConfig::default();
        let out = cosimulate(&arch, &ts, &alloc, &config, 800);
        // Both hops see traffic, and deliveries happen.
        assert!(out
            .msg_worst_latency
            .contains_key(&(msg, optalloc_model::MediumId(0))));
        assert!(out
            .msg_worst_latency
            .contains_key(&(msg, optalloc_model::MediumId(1))));
        assert!(out.msgs_delivered >= 6);
        // Each hop's observed latency within its local deadline.
        for (&(m, k), &obs) in &out.msg_worst_latency {
            let d = alloc.route(m).deadline_on(k).unwrap();
            assert!(obs <= d, "{m} on {k}: observed {obs} > budget {d}");
        }
    }
}
