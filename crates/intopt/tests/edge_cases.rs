//! Targeted edge-case tests for the bit-blaster: width boundaries, sign
//! handling, degenerate ranges, and mixed-width comparisons.

use optalloc_intopt::{Backend, BoolExpr, IntExpr, IntProblem};

fn backends() -> [Backend; 2] {
    [Backend::Cnf, Backend::PseudoBoolean]
}

#[test]
fn power_of_two_boundaries() {
    for backend in backends() {
        for bound in [127i64, 128, 255, 256, 1023, 1024] {
            let mut p = IntProblem::new();
            let x = p.int_var(0, bound);
            p.assert(x.expr().ge(bound - 1));
            let m = p.solve(backend).unwrap();
            assert!(
                m.int(x) >= bound - 1 && m.int(x) <= bound,
                "{backend:?} {bound}"
            );
        }
    }
}

#[test]
fn negative_boundaries() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(-128, 127);
        p.assert(x.expr().le(-127));
        let m = p.solve(backend).unwrap();
        assert!(m.int(x) == -128 || m.int(x) == -127, "{backend:?}");
    }
}

#[test]
fn singleton_ranges_are_constants() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(42, 42);
        let y = p.int_var(0, 100);
        p.assert(y.expr().eq(x.expr() + 1));
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(x), 42);
        assert_eq!(m.int(y), 43);
    }
}

#[test]
fn subtraction_can_go_negative_internally() {
    for backend in backends() {
        // x − y ranges over [−50, 50] even though x, y ≥ 0.
        let mut p = IntProblem::new();
        let x = p.int_var(0, 50);
        let y = p.int_var(0, 50);
        p.assert((x.expr() - y.expr()).eq(-37));
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(x) - m.int(y), -37, "{backend:?}");
    }
}

#[test]
fn mixed_width_comparison() {
    for backend in backends() {
        // 3-bit x against 10-bit y.
        let mut p = IntProblem::new();
        let x = p.int_var(0, 7);
        let y = p.int_var(0, 1000);
        p.assert(x.expr().gt(y.expr()));
        p.assert(y.expr().ge(6));
        let m = p.solve(backend).unwrap();
        assert!(m.int(x) > m.int(y), "{backend:?}");
        assert_eq!((m.int(x), m.int(y)), (7, 6));
    }
}

#[test]
fn product_of_negatives_is_positive() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(-10, -1);
        let y = p.int_var(-10, -1);
        p.assert((x.expr() * y.expr()).eq(72));
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(x) * m.int(y), 72, "{backend:?}");
        assert!(m.int(x) < 0 && m.int(y) < 0);
    }
}

#[test]
fn zero_width_product() {
    for backend in backends() {
        // One operand pinned to zero collapses the product.
        let mut p = IntProblem::new();
        let x = p.int_var(0, 0);
        let y = p.int_var(-100, 100);
        p.assert((x.expr() * y.expr()).eq(0));
        p.assert(y.expr().eq(-5));
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(y), -5);
    }
}

#[test]
fn deeply_nested_expression() {
    for backend in backends() {
        // ((x+1)*(x-1)) + ((y+2)*(y-2)) == x² + y² − 5
        let mut p = IntProblem::new();
        let x = p.int_var(-8, 8);
        let y = p.int_var(-8, 8);
        let lhs = (x.expr() + 1) * (x.expr() - 1) + (y.expr() + 2) * (y.expr() - 2);
        p.assert(lhs.eq(20)); // x² + y² = 25
        let m = p.solve(backend).unwrap();
        let (xv, yv) = (m.int(x), m.int(y));
        assert_eq!(xv * xv + yv * yv, 25, "{backend:?}: got ({xv}, {yv})");
    }
}

#[test]
fn chained_implications_propagate() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let gates: Vec<_> = (0..6).map(|_| p.bool_var()).collect();
        let x = p.int_var(0, 63);
        // g0 → g1 → … → g5 → x = 33; assert g0.
        for w in gates.windows(2) {
            p.assert(w[0].expr().implies(w[1].expr()));
        }
        p.assert(gates[5].expr().implies(x.expr().eq(33)));
        p.assert(gates[0].expr());
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(x), 33, "{backend:?}");
        assert!(gates.iter().all(|g| m.bool(*g)));
    }
}

#[test]
fn iff_and_xor_on_derived_conditions() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 20);
        let y = p.int_var(0, 20);
        // (x ≥ 10) xor (y ≥ 10), and x + y == 25.
        p.assert(x.expr().ge(10).xor(y.expr().ge(10)));
        p.assert((x.expr() + y.expr()).eq(25));
        let m = p.solve(backend).unwrap();
        let (a, b) = (m.int(x) >= 10, m.int(y) >= 10);
        assert!(a ^ b, "{backend:?}: {} {}", m.int(x), m.int(y));
    }
}

#[test]
fn trivially_unsat_from_ranges() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(5, 10);
        p.assert(x.expr().lt(3)); // decided false by range folding
        assert!(p.solve(backend).is_none(), "{backend:?}");
    }
}

#[test]
fn boolean_constants_fold_through() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 7);
        p.assert(BoolExpr::constant(true).implies(x.expr().eq(5)));
        p.assert(BoolExpr::constant(false).implies(x.expr().eq(6)));
        let m = p.solve(backend).unwrap();
        assert_eq!(m.int(x), 5);
    }
}

#[test]
fn large_sum_of_many_variables() {
    for backend in backends() {
        let mut p = IntProblem::new();
        let xs: Vec<_> = (0..24).map(|_| p.int_var(0, 15)).collect();
        let total = IntExpr::sum(xs.iter().map(|v| v.expr()));
        p.assert(total.eq(200));
        let m = p.solve(backend).unwrap();
        let s: i64 = xs.iter().map(|&v| m.int(v)).sum();
        assert_eq!(s, 200, "{backend:?}");
    }
}
