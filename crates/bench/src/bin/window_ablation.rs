//! **Window-search ablation** — does partitioning the cost interval divide
//! the terminal UNSAT certification across workers?
//!
//! Table-3-style instances (token-ring task-set scaling), TRT objective,
//! cold start (no SA seeding — this harness isolates the parallel-search
//! lever; `portfolio_ablation` covers the warm-start pipeline). Three
//! modes per instance:
//!
//! - `single` — plain incremental binary search ([`Strategy::Single`]),
//!   the baseline every speedup column divides by;
//! - `racing` — N diversified workers over the same interval
//!   ([`Strategy::Portfolio`]): every worker re-proves the terminal UNSAT
//!   window, so certification work is *replicated*;
//! - `window` — N workers over **disjoint** sub-windows
//!   ([`Strategy::WindowSearch`]): the certification region is partitioned,
//!   so its conflicts split across workers instead of repeating.
//!
//! The per-worker conflict column (`worker_conflicts`) makes that split
//! visible: under `racing` every worker's count is on the order of the
//! single search; under `window` the counts sum to roughly the single
//! search. The harness asserts all modes return the identical proven
//! optimum.
//!
//! On a single-core host parallel workers time-slice one CPU, so the
//! *measured* `speedup_vs_single` stays near (or below) 1× and only
//! reflects algorithmic effects. `projected_parallel_speedup` normalizes
//! to one core per worker with the same formula as `portfolio_ablation`
//! (`single / (sa + wall / workers)`, here with `sa = 0`): with fair
//! time-slicing, `wall / workers` approximates a worker's solo wall time
//! when it owns a core. `host_cores` (via
//! `std::thread::available_parallelism()`) records how much of the
//! projection the measuring host could actually deliver.
//!
//! The peak worker count defaults to `--workers auto` (one per host core);
//! pass `--workers <n>` to pin it — e.g. `--workers 2` for a CI smoke run.
//! `OPTALLOC_ABLATION_SIZES` (comma-separated task counts) overrides the
//! instance grid, e.g. `OPTALLOC_ABLATION_SIZES=20,30`.

use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_bench::{parse_cli, solve_options};
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;
use serde::Serialize;
use std::time::Instant;

/// One measurement of the ablation grid.
#[derive(Debug, Serialize)]
struct WindowRow {
    instance: String,
    tasks: usize,
    /// `single`, `racing`, or `window` (see module docs).
    mode: &'static str,
    workers: usize,
    /// CPUs available to the process — workers beyond this count time-slice
    /// cores, capping the *measured* speedup at ~1×.
    host_cores: usize,
    /// Proven optimal TRT in ticks (identical across all modes — asserted).
    cost: i64,
    time_s: f64,
    solve_calls: u32,
    /// Total conflicts summed over all workers.
    conflicts: u64,
    /// Conflicts per worker, by worker index (empty for `single`). Under
    /// `window` these sum to roughly the single-search count; under
    /// `racing` each entry is on that order by itself.
    worker_conflicts: Vec<u64>,
    /// Cost windows probed per worker (window mode only; empty otherwise).
    worker_windows: Vec<usize>,
    /// `time_s(single) / time_s(this row)` — measured wall clock.
    speedup_vs_single: f64,
    /// `time_s(single) / (time_s(this row) / workers)` — expected speedup
    /// with one core per worker (see module docs).
    projected_parallel_speedup: f64,
}

fn main() {
    let cli = parse_cli();
    let ring = MediumId(0);
    let objective = Objective::TokenRotationTime(ring);
    let default_sizes: &[usize] = if cli.full { &[20, 30, 43] } else { &[12, 20] };
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    let peak = cli.max_workers().max(2);
    let mut counts: Vec<usize> = vec![2, 4, peak];
    counts.retain(|&w| w <= peak);
    counts.sort_unstable();
    counts.dedup();
    // Grid: the single baseline, racing at each parallel count, and window
    // search from 1 worker (sequential interval bisection — isolates the
    // scheduler overhead) up to the peak.
    let mut grid: Vec<(&'static str, usize)> = vec![("single", 1)];
    grid.extend(counts.iter().map(|&w| ("racing", w)));
    grid.push(("window", 1));
    grid.extend(counts.iter().map(|&w| ("window", w)));

    let mut rows: Vec<WindowRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let base_opts = solve_options(cli.full);
        let mut single_time = f64::NAN;
        let mut single_cost = 0i64;

        for &(mode, workers) in &grid {
            let opts = SolveOptions {
                strategy: match mode {
                    "single" => Strategy::Single,
                    "racing" => Strategy::Portfolio {
                        workers,
                        deterministic: false,
                    },
                    _ => Strategy::WindowSearch {
                        workers,
                        deterministic: false,
                    },
                },
                ..base_opts.clone()
            };
            let start = Instant::now();
            let r = Optimizer::new(&w.arch, &w.tasks)
                .with_options(opts)
                .minimize(&objective)
                .unwrap_or_else(|e| panic!("{n} tasks, {workers} {mode} workers: {e}"));
            let total = start.elapsed().as_secs_f64();
            if mode == "single" {
                single_time = total;
                single_cost = r.cost;
            }
            assert_eq!(
                r.cost, single_cost,
                "{n} tasks: {mode}/{workers} optimum diverged from the single search"
            );
            let projected = single_time / (total / workers as f64);
            eprintln!(
                "{n} tasks, {mode}/{workers}: TRT = {} in {total:.2}s — \
                 speedup {:.2}x measured, {projected:.2}x projected at one \
                 core/worker",
                r.cost,
                single_time / total,
            );
            for report in &r.workers {
                eprintln!("  {report}");
            }
            rows.push(WindowRow {
                instance: w.name.clone(),
                tasks: n,
                mode,
                workers,
                host_cores: optalloc_bench::host_cores(),
                cost: r.cost,
                time_s: total,
                solve_calls: r.solve_calls,
                conflicts: r.stats.conflicts,
                worker_conflicts: r.workers.iter().map(|w| w.stats.conflicts).collect(),
                worker_windows: r.workers.iter().map(|w| w.windows.len()).collect(),
                speedup_vs_single: single_time / total,
                projected_parallel_speedup: projected,
            });
        }
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    println!("{json}");
    if let Some(path) = &cli.json {
        std::fs::write(path, &json).expect("write json");
        eprintln!("(rows written to {})", path.display());
    }
}
