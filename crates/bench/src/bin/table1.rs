//! **Table 1** — the \[5\]-style benchmark on 8 ECUs.
//!
//! Paper rows:
//!
//! ```text
//! \[5\]        TRT = 8.55ms   48 min   175k var   995k lit   (SA found 8.7ms)
//! \[5\] + CAN  U_CAN = 0.371  361 min  298k var  1627k lit
//! ```
//!
//! We reproduce the *shape*: the SAT optimum is ≤ the simulated-annealing
//! result (the paper's headline — SA was not optimal), the CAN variant's
//! encoding is markedly larger than the token-ring one, and the Var./Lit.
//! columns land in the paper's order of magnitude at full scale.
//!
//! Quick mode runs a reduced instance (same generator, fewer tasks);
//! `--full` runs the whole 43-task synthetic benchmark.

use optalloc::{Objective, Optimizer};
use optalloc_bench::{emit, parse_cli, solve_options, Row};
use optalloc_heuristics::{anneal, greedy, HeuristicObjective, SaParams};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_workloads::{generate, GenParams};
use std::time::Instant;

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();

    let params = if cli.full {
        GenParams::tindell43()
    } else {
        GenParams {
            n_tasks: 16,
            n_chains: 5,
            utilization: 0.35,
            ..GenParams::tindell43()
        }
    };
    let ring = MediumId(0);

    // --- token ring, minimize TRT: SAT vs SA vs greedy -------------------
    let w = generate(&params);
    match Optimizer::new(&w.arch, &w.tasks)
        .with_options(solve_options(cli.full))
        .minimize(&Objective::TokenRotationTime(ring))
    {
        Ok(r) => rows.push(Row::from_report(
            format!("[5]-style ring (SAT, n={})", params.n_tasks),
            &r,
            format!("TRT = {:.2}ms", ticks_to_ms(r.cost as u64)),
        )),
        Err(e) => rows.push(Row {
            experiment: format!("[5]-style ring (SAT, n={})", params.n_tasks),
            result: format!("{e}"),
            time_s: 0.0,
            vars_k: 0.0,
            lits_k: 0.0,
            note: String::new(),
        }),
    }

    let sa_params = SaParams {
        restarts: if cli.full { 8 } else { 4 },
        ..Default::default()
    };
    let t = Instant::now();
    let sa = anneal(
        &w.arch,
        &w.tasks,
        &HeuristicObjective::TokenRotationTime(ring),
        &sa_params,
    );
    rows.push(Row {
        experiment: "  simulated annealing [5]".into(),
        result: if sa.feasible {
            format!("TRT = {:.2}ms", ticks_to_ms(sa.objective as u64))
        } else {
            "infeasible".into()
        },
        time_s: t.elapsed().as_secs_f64(),
        vars_k: 0.0,
        lits_k: 0.0,
        note: format!("{} evaluations", sa.evaluations),
    });

    let t = Instant::now();
    let gr = greedy(
        &w.arch,
        &w.tasks,
        &HeuristicObjective::TokenRotationTime(ring),
    );
    rows.push(Row {
        experiment: "  greedy first-fit".into(),
        result: if gr.feasible {
            format!("TRT = {:.2}ms", ticks_to_ms(gr.objective as u64))
        } else {
            "infeasible".into()
        },
        time_s: t.elapsed().as_secs_f64(),
        vars_k: 0.0,
        lits_k: 0.0,
        note: String::new(),
    });

    // --- CAN variant, minimize U_CAN --------------------------------------
    let can_params = GenParams {
        token_ring: false,
        name: format!("{}-can", params.name),
        ..params.clone()
    };
    let wc = generate(&can_params);
    match Optimizer::new(&wc.arch, &wc.tasks)
        .with_options(solve_options(cli.full))
        .minimize(&Objective::BusLoadPermille(ring))
    {
        Ok(r) => rows.push(Row::from_report(
            "[5] + CAN (SAT)",
            &r,
            format!("U_CAN = {:.3}", r.cost as f64 / 1000.0),
        )),
        Err(e) => rows.push(Row {
            experiment: "[5] + CAN (SAT)".into(),
            result: format!("{e}"),
            time_s: 0.0,
            vars_k: 0.0,
            lits_k: 0.0,
            note: String::new(),
        }),
    }

    let t = Instant::now();
    let sa_can = anneal(
        &wc.arch,
        &wc.tasks,
        &HeuristicObjective::BusLoadPermille(ring),
        &sa_params,
    );
    rows.push(Row {
        experiment: "  simulated annealing".into(),
        result: if sa_can.feasible {
            format!("U_CAN = {:.3}", sa_can.objective as f64 / 1000.0)
        } else {
            "infeasible".into()
        },
        time_s: t.elapsed().as_secs_f64(),
        vars_k: 0.0,
        lits_k: 0.0,
        note: format!("{} evaluations", sa_can.evaluations),
    });

    emit(
        "Table 1: [5]-style benchmark — optimal SAT allocation vs heuristics",
        &rows,
        &cli,
    );
    println!(
        "paper: TRT 8.55ms SAT vs 8.7ms SA (48 min, 175k var, 995k lit); \
         CAN U=0.371 (361 min, 298k var, 1627k lit)"
    );
}
