//! JSON round-trips for the full workload bundle — the format the
//! `optalloc-cli` tool exchanges.

use optalloc_workloads::{generate, table4_workload, Fig2, GenParams, Workload};

fn roundtrip(w: &Workload) -> Workload {
    let json = serde_json::to_string(w).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn tindell_workload_roundtrips() {
    let w = generate(&GenParams::tindell43());
    let back = roundtrip(&w);
    assert_eq!(back.name, w.name);
    assert_eq!(back.arch, w.arch);
    assert_eq!(back.tasks, w.tasks);
    assert_eq!(back.planted, w.planted);
}

#[test]
fn hierarchical_workload_roundtrips() {
    let mut params = GenParams::tindell43();
    params.n_tasks = 10;
    params.n_chains = 3;
    let w = table4_workload(Fig2::C, &params);
    let back = roundtrip(&w);
    assert_eq!(back.arch, w.arch);
    assert_eq!(back.tasks, w.tasks);
    // The planted allocation's routes and slot overrides survive.
    assert_eq!(back.planted.routes, w.planted.routes);
    assert_eq!(back.planted.slot_overrides, w.planted.slot_overrides);
}

#[test]
fn deserialized_workload_still_validates() {
    let w = generate(&GenParams {
        n_tasks: 12,
        n_chains: 4,
        name: "roundtrip".into(),
        ..GenParams::tindell43()
    });
    let back = roundtrip(&w);
    assert!(back.arch.validate().is_ok());
    assert!(back.tasks.validate().is_ok());
    let report = optalloc_analysis::validate(
        &back.arch,
        &back.tasks,
        &back.planted,
        &optalloc_analysis::AnalysisConfig::default(),
    );
    assert!(report.is_feasible());
}
