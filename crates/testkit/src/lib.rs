//! Metamorphic fuzzing subsystem for the allocation pipeline.
//!
//! The certification layer (`certify: true`) proves that one answer to one
//! instance is right. This crate attacks the orthogonal question: is the
//! pipeline right *across* instances — under relabeling, rescaling,
//! tightening, redundant constraints, engine diversity and warm-start
//! reuse? Each of those transforms implies a provable relationship between
//! optima ([`relations`]); holding the implementation to them explores
//! corners no hand-written test enumerates.
//!
//! The pieces:
//!
//! - [`spec`] — a compact, serializable seed grammar for hierarchical
//!   instances; every regression file is one self-contained spec.
//! - [`gen`] — a structured generator producing *valid* gateway-chained
//!   CAN/TDMA architectures and constrained task sets from a `u64` seed.
//! - [`relations`] — the metamorphic relation library.
//! - [`shrink`] — a delta-debugging shrinker that reduces violations to
//!   locally-minimal reproducers.
//! - [`campaign`] — the seed loop tying it together, with JSON summaries
//!   and persisted regression files; driven by the `optalloc-fuzz` binary.
//!
//! Checked mode (`--checked` / `SolveOptions::paranoid`) additionally
//! walks deep solver invariants after every solve and re-verifies each
//! model against the pre-elimination input formula, so a violation
//! surfaces as close to the broken state transition as possible.

pub mod campaign;
pub mod gen;
pub mod relations;
pub mod shrink;
pub mod spec;

pub use campaign::{replay, run_campaign, CampaignConfig, CampaignSummary, ViolationRecord};
pub use gen::{gen_spec, GenConfig};
pub use relations::{check_relation, solve_spec, Outcome, RelationKind};
pub use shrink::shrink;
pub use spec::{base_options, InstanceSpec};
