//! # optalloc-bench
//!
//! Table/figure regeneration harnesses for the paper's evaluation (§6) plus
//! Criterion micro-benchmarks.
//!
//! Each `table*` binary reprints one experiment of the paper:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — \[5\]-style benchmark, TRT + CAN-load objectives, SA comparison |
//! | `table2` | Table 2 — architecture scaling (ECU count sweep) |
//! | `table3` | Table 3 — task-set scaling |
//! | `table4` | Table 4 — hierarchical architectures A/B/C, ΣTRT |
//! | `fig1`   | Figure 1 — path closures of the example topology |
//! | `incremental_ablation` | §7 — learned-clause reuse speedup |
//! | `encoding_ablation` | §5.1 — CNF vs pseudo-Boolean encoding sizes |
//!
//! All binaries accept `--full` (paper-scale parameters; long runtimes) and
//! default to a calibrated **quick** scale that preserves the trends while
//! finishing in seconds to minutes. `--json <path>` additionally dumps
//! machine-readable rows.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Run at paper-scale parameters (slow).
    pub full: bool,
    /// Dump rows as JSON to this path.
    pub json: Option<PathBuf>,
    /// Peak worker count for the parallel ablations; `None` = `auto`
    /// (one per host core). Resolve with [`Cli::max_workers`].
    pub workers: Option<usize>,
}

impl Cli {
    /// The largest worker count an ablation grid should reach: the
    /// `--workers` override, or one per host core (the `auto` default).
    pub fn max_workers(&self) -> usize {
        self.workers.unwrap_or_else(host_cores)
    }
}

/// CPUs available to the process (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses `--full`, `--json <path>` and `--workers <n|auto>` from
/// `std::env::args`.
pub fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => cli.full = true,
            "--json" => cli.json = args.next().map(PathBuf::from),
            "--workers" => {
                cli.workers = match args.next().as_deref() {
                    Some("auto") | None => None,
                    Some(n) => n.parse().ok(),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --full (paper-scale), --json <path>, \
                     --workers <n|auto> (peak parallel worker count; \
                     auto = one per host core)\n\
                     env: OPTALLOC_ENCODER_OPT=0 disables the encoder \
                     optimization layer (gate hash-consing, interval \
                     narrowing, SAT preprocessing)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    cli
}

/// One row of an experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment label (leftmost column).
    pub experiment: String,
    /// Headline result (objective value, status).
    pub result: String,
    /// Wall-clock time of the optimization run.
    pub time_s: f64,
    /// Propositional variables of the encoding (thousands).
    pub vars_k: f64,
    /// Literal occurrences of the encoding (thousands).
    pub lits_k: f64,
    /// Extra detail (solver calls, conflicts, …).
    pub note: String,
}

impl Row {
    /// Builds a row from an optimizer report.
    pub fn from_report(
        experiment: impl Into<String>,
        r: &optalloc::OptimizeReport,
        result: String,
    ) -> Row {
        Row {
            experiment: experiment.into(),
            result,
            time_s: r.wall.as_secs_f64(),
            vars_k: r.encode.bool_vars as f64 / 1000.0,
            lits_k: r.encode.literals as f64 / 1000.0,
            note: format!(
                "{} SOLVE calls, {} conflicts",
                r.solve_calls, r.stats.conflicts
            ),
        }
    }
}

/// Formats a duration like the paper's time columns.
pub fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 60.0 {
        format!("{s:.2}s")
    } else if s < 3600.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else {
        format!(
            "{}h{:02}m",
            (s / 3600.0) as u64,
            ((s % 3600.0) / 60.0) as u64
        )
    }
}

/// Prints a table in the paper's layout and optionally dumps JSON.
pub fn emit(title: &str, rows: &[Row], cli: &Cli) {
    println!("\n== {title} ==");
    println!(
        "{:<34} {:>16} {:>10} {:>10} {:>10}  Notes",
        "Experiment", "Result", "Time", "Var.(k)", "Lit.(k)"
    );
    for r in rows {
        println!(
            "{:<34} {:>16} {:>10} {:>10.1} {:>10.1}  {}",
            r.experiment,
            r.result,
            fmt_time(Duration::from_secs_f64(r.time_s)),
            r.vars_k,
            r.lits_k,
            r.note
        );
    }
    if let Some(path) = &cli.json {
        let json = serde_json::to_string_pretty(rows).expect("rows serialize");
        std::fs::write(path, json).expect("write json");
        println!("(rows written to {})", path.display());
    }
}

/// True when `OPTALLOC_ENCODER_OPT` is set to `0`, `false` or `off`: the
/// bench binaries then run with the encoder optimization layer disabled
/// (the pre-optimization baseline encoding).
pub fn encoder_opt_disabled() -> bool {
    matches!(
        std::env::var("OPTALLOC_ENCODER_OPT").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

/// Solve options for the harnesses: quick mode bounds conflicts so a
/// too-hard probe degrades into a reported incumbent instead of hanging.
/// Honors the `OPTALLOC_ENCODER_OPT=0` override (see
/// [`encoder_opt_disabled`]).
pub fn solve_options(full: bool) -> optalloc::SolveOptions {
    optalloc::SolveOptions {
        max_conflicts: if full { None } else { Some(3_000_000) },
        // Generated frames are ≤ 9 ticks, so 24 leaves ample headroom while
        // keeping the slot decision space small in quick mode.
        max_slot: if full { 48 } else { 24 },
        encoder_opt: if encoder_opt_disabled() {
            optalloc::EncoderOpt::none()
        } else {
            optalloc::EncoderOpt::default()
        },
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(Duration::from_millis(2500)), "2.50s");
        assert_eq!(fmt_time(Duration::from_secs(75)), "1m15s");
        assert_eq!(fmt_time(Duration::from_secs(3700)), "1h01m");
    }

    #[test]
    fn cli_default_is_quick() {
        let cli = Cli::default();
        assert!(!cli.full);
        assert!(cli.json.is_none());
    }

    #[test]
    fn workers_default_to_host_cores() {
        let cli = Cli::default();
        assert_eq!(cli.max_workers(), host_cores());
        assert!(host_cores() >= 1);
        let pinned = Cli {
            workers: Some(3),
            ..Cli::default()
        };
        assert_eq!(pinned.max_workers(), 3);
    }
}
