//! Decoding a SAT model back into an [`Allocation`] — "extracting the
//! placement and scheduling information from the satisfying assignment"
//! (paper §5.2).

use crate::encode::Encoding;
use optalloc_intopt::Model;
use optalloc_model::{deadline_monotonic, Allocation, MessageRoute, TaskId};

/// Reads the allocation encoded in `model` out of the variable maps.
pub(crate) fn decode(enc: &Encoding<'_>, model: &Model) -> Allocation {
    let tasks = enc.tasks;

    // Π: the ECU whose one-hot literal is true.
    let placement = (0..tasks.len())
        .map(|i| {
            let tid = TaskId(i as u32);
            enc.alloc[tid.index()]
                .iter()
                .find(|(_, v)| model.bool(**v))
                .map(|(&p, _)| p)
                .expect("exactly-one allocation constraint guarantees a placement")
        })
        .collect();

    // Φ: deadline-monotonic with the same id tie-break the encoder fixed.
    let priorities = deadline_monotonic(tasks);

    // Γ: the selected sub-path per message, with its local deadlines.
    let mut routes: Vec<Vec<MessageRoute>> = tasks
        .tasks
        .iter()
        .map(|t| Vec::with_capacity(t.messages.len()))
        .collect();
    for mv in &enc.msgs {
        let chosen = mv
            .routes
            .iter()
            .zip(&mv.hsel)
            .find(|(_, sel)| model.bool(**sel))
            .map(|(r, _)| r)
            .expect("exactly-one selector constraint guarantees a route");
        let local_deadlines = chosen
            .path
            .iter()
            .map(|k| model.int(mv.local_deadline[k]) as u64)
            .collect();
        routes[mv.id.sender.index()].push(MessageRoute {
            media: chosen.path.clone(),
            local_deadlines,
        });
    }

    // Slot tables the optimizer chose.
    let slot_overrides = enc
        .slot_vars
        .iter()
        .map(|(&k, vars)| {
            let slots = vars.iter().map(|v| model.int(*v) as u64).collect();
            (k, slots)
        })
        .collect();

    Allocation {
        placement,
        priorities,
        routes,
        slot_overrides,
    }
}
