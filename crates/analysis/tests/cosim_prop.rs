//! Property test: on feasible planted allocations, the co-simulation's
//! observed worst cases never exceed the analytic bounds — task responses
//! stay within the RTA fixed points and per-medium message latencies within
//! the eq. (2)/(3) response-time bounds.

use optalloc_analysis::{
    all_task_response_times, cosimulate, message_response_time, validate, AnalysisConfig,
};
use optalloc_workloads::{generate, GenParams};
use proptest::prelude::*;

/// One property case: simulate `seed`/`ring` and compare observation
/// against analysis. `Reject` when the planted allocation is infeasible.
fn check_simulation_within_bounds(seed: u64, ring: bool) -> Result<(), TestCaseError> {
    let w = generate(&GenParams {
        name: format!("cosim-{seed}"),
        n_tasks: 10,
        n_chains: 3,
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: ring,
        deadline_slack: 1.5,
    });
    let config = AnalysisConfig::default();
    let report = validate(&w.arch, &w.tasks, &w.planted, &config);
    prop_assume!(report.is_feasible());

    // Horizon: several hyperperiod-ish windows (periods ≤ 1000 ticks).
    let out = cosimulate(&w.arch, &w.tasks, &w.planted, &config, 6_000);

    // Task responses ≤ RTA fixed points.
    let rta = all_task_response_times(&w.tasks, &w.planted, false);
    for (i, observed) in out.task_worst_response.iter().enumerate() {
        if let (Some(obs), Some(bound)) = (observed, rta[i]) {
            prop_assert!(
                *obs <= bound,
                "seed {seed}: task {i} observed {obs} > RTA {bound}"
            );
        }
        prop_assert!(out.jobs_finished[i] > 0, "seed {seed}: task {i} never ran");
    }

    // Per-medium message latencies ≤ eq. (2)/(3) bounds.
    for (&(m, k), &obs) in &out.msg_worst_latency {
        let bound = message_response_time(&w.arch, &w.tasks, &w.planted, m, k)
            .expect("feasible allocation has converging message RTA");
        prop_assert!(
            obs <= bound,
            "seed {seed}: {m} on {k} observed {obs} > bound {bound}"
        );
    }
    prop_assert!(out.msgs_delivered > 0 || w.tasks.messages().count() == 0);
    Ok(())
}

/// Pinned regression from `cosim_prop.proptest-regressions` ("shrinks to
/// seed = 0, ring = true"): the vendored proptest stand-in does not replay
/// regression files, so the historic failure case runs as a plain test.
#[test]
fn regression_seed_0_ring_true() {
    match check_simulation_within_bounds(0, true) {
        Ok(()) | Err(TestCaseError::Reject) => {}
        Err(TestCaseError::Fail(msg)) => panic!("regression case failed: {msg}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_never_exceeds_analysis(seed in 0u64..10_000, ring in any::<bool>()) {
        return check_simulation_within_bounds(seed, ring);
    }
}
