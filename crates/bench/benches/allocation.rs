//! Criterion benchmarks of end-to-end optimal allocation on small
//! instances (encode → binary search → decode → re-validate), plus the
//! simulated-annealing baseline for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_heuristics::{anneal, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn small_params(n: usize) -> GenParams {
    GenParams {
        name: format!("bench-{n}"),
        n_tasks: n,
        n_chains: (n / 3).max(1),
        n_ecus: 4,
        seed: 0xbe9c_0000 + n as u64,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: true,
        deadline_slack: 1.5,
    }
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));

    for n in [6usize, 9] {
        let w = generate(&small_params(n));
        group.bench_with_input(BenchmarkId::new("sat_optimal_trt", n), &n, |b, _| {
            b.iter(|| {
                let r = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(SolveOptions {
                        max_slot: 16,
                        ..Default::default()
                    })
                    .minimize(&Objective::TokenRotationTime(MediumId(0)))
                    .expect("feasible by construction");
                r.cost
            })
        });
        group.bench_with_input(BenchmarkId::new("sa_baseline_trt", n), &n, |b, _| {
            let params = SaParams {
                restarts: 2,
                iters_per_stage: 100,
                stages: 25,
                ..Default::default()
            };
            b.iter(|| {
                let r = anneal(
                    &w.arch,
                    &w.tasks,
                    &HeuristicObjective::TokenRotationTime(MediumId(0)),
                    &params,
                );
                r.energy
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
