//! A reusable cost-window probe engine.
//!
//! [`CostProber`] owns one incremental solver with the problem encoded once
//! and answers `SOLVE(φ ∧ lo ≤ cost ≤ hi)` queries against arbitrary
//! windows, carrying every learned clause across probes (the paper's §7
//! reuse). It is the engine under both the sequential `BIN_SEARCH` loop
//! ([`crate::BinSearchMode::Incremental`]) and the portfolio's parallel
//! window scheduler, which assigns each worker's prober a disjoint
//! sub-window of the remaining cost range.
//!
//! Each bounded probe allocates a fresh guard literal, attaches the window
//! bounds guarded by it, assumes the guard for the solve, and closes the
//! guard afterwards so the dead bound clauses simplify away. Guards are
//! therefore always allocated *above* the base encoding, which is what
//! makes cross-worker clause sharing sound (see
//! [`optalloc_sat::ClauseExchange`]): when the solver configuration carries
//! an exchange, the prober pins `share_var_limit` to the base encoding size
//! so no guard-dependent clause can leak out.

use crate::binsearch::{EncodeStats, MinimizeOptions};
use crate::blast::{blast_with, Blast};
use crate::certificate::{CertifiedWindow, WindowProof};
use crate::problem::{IntProblem, Model};
use crate::IntVar;
use optalloc_obs::Phase;
use optalloc_sat::{SolveResult, Solver, SolverStats};
use std::borrow::Cow;
use std::sync::Arc;

/// Verdict of a single window probe.
#[derive(Clone, Debug)]
pub enum Probe {
    /// A model inside the window, with the cost it attains.
    Sat {
        /// Value of the cost variable in the witnessing model.
        value: i64,
        /// The witnessing model.
        model: Model,
    },
    /// No model inside the window (an exhaustive refutation).
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
    /// The cooperative interrupt flag was raised mid-solve.
    Interrupted,
}

/// An incremental solver bound to one problem, answering cost-window
/// queries (see the module docs).
pub struct CostProber<'p> {
    problem: Cow<'p, IntProblem>,
    cost: IntVar,
    solver: Solver,
    bl: Blast,
    encode: EncodeStats,
    solve_calls: u32,
    /// Windows refuted so far, when proof logging is on; paired with the
    /// solver's trace by [`CostProber::take_proof`].
    certified: Vec<CertifiedWindow>,
}

impl std::fmt::Debug for CostProber<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostProber")
            .field("cost", &self.cost)
            .field("encode", &self.encode)
            .field("solve_calls", &self.solve_calls)
            .finish()
    }
}

impl<'p> CostProber<'p> {
    /// Encodes `problem` once into a solver configured per `opts`.
    pub fn new(problem: &'p IntProblem, cost: IntVar, opts: &MinimizeOptions) -> CostProber<'p> {
        CostProber::build(Cow::Borrowed(problem), cost, opts)
    }

    /// Like [`CostProber::new`] but takes ownership of the problem, so the
    /// prober can outlive the caller's frame. This is what lets a warm-start
    /// engine retain a prober (encoding plus learned clauses) across
    /// re-solve requests (see [`crate::WarmEngine`]).
    pub fn new_owned(
        problem: IntProblem,
        cost: IntVar,
        opts: &MinimizeOptions,
    ) -> CostProber<'static> {
        CostProber::build(Cow::Owned(problem), cost, opts)
    }

    fn build(problem: Cow<'p, IntProblem>, cost: IntVar, opts: &MinimizeOptions) -> CostProber<'p> {
        let mut solver = opts.new_solver();
        // The stopwatch both times the encoding and (when observability is
        // enabled) records the `encode` trace span from the *same* f64, so
        // `EncodeStats::encode_ms` and the trace can never disagree.
        let mut sw = solver.config.obs.stopwatch(Phase::Encode);
        let (form, decls) = problem.prepare(&opts.encoder_opt);
        let bl = blast_with(&form, &decls, &mut solver, opts.backend, &opts.encoder_opt);
        if sw.recording() {
            sw.attr("vars", solver.num_vars().to_string());
            sw.attr("constraints", solver.num_constraints().to_string());
        }
        let encode_ms = sw.finish();
        // Clause sharing may only cover the base encoding: guard variables
        // for window bounds are allocated from here on up.
        if solver.config.share_var_limit == 0 {
            solver.config.share_var_limit = solver.num_vars();
        }
        // The cost bits are re-referenced by every bounded probe's guard
        // clauses; keep them out of variable elimination.
        bl.freeze_int_var(&mut solver, cost);
        let encode = EncodeStats {
            bool_vars: solver.num_vars() as u64,
            literals: solver.num_literals(),
            constraints: solver.num_constraints(),
            encode_ms,
        };
        CostProber {
            problem,
            cost,
            solver,
            bl,
            encode,
            solve_calls: 0,
            certified: Vec::new(),
        }
    }

    /// The problem this prober is bound to.
    pub fn problem(&self) -> &IntProblem {
        &self.problem
    }

    /// The cost variable this prober windows over.
    pub fn cost(&self) -> IntVar {
        self.cost
    }

    /// Number of learned clauses currently retained by the underlying
    /// solver (the cross-probe reuse haul).
    pub fn num_learned(&self) -> usize {
        self.solver.num_learned()
    }

    /// Drops the retained learned clauses (see
    /// [`optalloc_sat::Solver::clear_learned`]), returning how many were
    /// removed. Used at re-solve boundaries when the database outgrew the
    /// caller's retention budget.
    pub fn clear_learned(&mut self) -> usize {
        self.solver.clear_learned()
    }

    /// Size of the propositional encoding.
    pub fn encode(&self) -> EncodeStats {
        self.encode
    }

    /// Number of `SOLVE` calls issued so far.
    pub fn solve_calls(&self) -> u32 {
        self.solve_calls
    }

    /// Statistics accumulated by the underlying solver.
    pub fn stats(&self) -> &SolverStats {
        &self.solver.stats
    }

    /// True when the encoding already refuted the problem (no probe needed).
    pub fn trivially_unsat(&self) -> bool {
        self.bl.trivially_unsat()
    }

    /// Takes the solver's proof trace together with every window it
    /// refuted, for certificate assembly. `None` unless the solver was
    /// configured with proof logging ([`optalloc_sat::SolverConfig::proof`],
    /// set by `MinimizeOptions::certify`). Draining: a second call returns
    /// `None`.
    pub fn take_proof(&mut self) -> Option<WindowProof> {
        let log = self.solver.take_proof()?;
        Some(WindowProof {
            log: Arc::new(log),
            windows: std::mem::take(&mut self.certified),
        })
    }

    /// Probes the window `lo ≤ cost ≤ hi` (or the unbounded problem when
    /// `window` is `None`). An empty window (`lo > hi`) or a trivially
    /// refuted encoding is vacuously [`Probe::Unsat`] without touching the
    /// solver.
    pub fn probe(&mut self, window: Option<(i64, i64)>) -> Probe {
        if self.bl.trivially_unsat() {
            return Probe::Unsat;
        }
        let result = match window {
            Some((lo, hi)) => {
                if lo > hi {
                    return Probe::Unsat;
                }
                // The whole bounded probe is one `bisect-window` span; the
                // guard encoding and the solver's own `search` span nest
                // inside it via the thread-local span stack.
                let mut probe_sw = self.solver.config.obs.stopwatch(Phase::BisectWindow);
                if probe_sw.recording() {
                    probe_sw.attr("lo", lo.to_string());
                    probe_sw.attr("hi", hi.to_string());
                }
                // Guard-clause emission is encoding work: attribute it to
                // encode_ms so solve_ms stays pure search time even across
                // many reused probes. Same stopwatch-as-span pattern as the
                // base encoding above.
                let mut sw = self.solver.config.obs.stopwatch(Phase::Encode);
                let guard = self.solver.new_var().positive();
                self.bl
                    .add_guarded_bounds(&mut self.solver, self.cost, lo, hi, guard);
                if sw.recording() {
                    sw.attr("pass", "guard-bounds");
                }
                self.encode.encode_ms += sw.finish();
                self.solve_calls += 1;
                self.solver.config.progress_window = Some((lo, hi));
                let r = self.solver.solve(&[guard]);
                probe_sw.finish();
                if r == SolveResult::Unsat && self.solver.config.proof {
                    // The failed-assumption clause ¬guard in the trace
                    // certifies "no model with lo ≤ cost ≤ hi".
                    self.certified.push(CertifiedWindow {
                        lo,
                        hi,
                        claim: vec![!guard],
                    });
                }
                // Close the guard: it is never assumed again, so the dead
                // bound clauses can simplify away.
                self.solver.add_clause(&[!guard]);
                r
            }
            None => {
                self.solve_calls += 1;
                self.solver.config.progress_window = None;
                let r = self.solver.solve(&[]);
                if r == SolveResult::Unsat && self.solver.config.proof {
                    // Unbounded refutation: the trace proves the base
                    // formula UNSAT outright (empty claim).
                    self.certified.push(CertifiedWindow {
                        lo: self.cost.lo,
                        hi: self.cost.hi,
                        claim: Vec::new(),
                    });
                }
                r
            }
        };
        match result {
            SolveResult::Sat => {
                let value = self.bl.int_value(&self.solver, self.cost);
                let model = self.problem.extract_model(&self.solver, &self.bl);
                Probe::Sat { value, model }
            }
            SolveResult::Unsat => Probe::Unsat,
            SolveResult::Unknown => Probe::Unknown,
            SolveResult::Interrupted => Probe::Interrupted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geq7() -> (IntProblem, IntVar) {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 100);
        p.assert(x.expr().ge(7));
        (p, x)
    }

    #[test]
    fn windows_partition_the_range() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(matches!(prober.probe(Some((0, 6))), Probe::Unsat));
        match prober.probe(Some((7, 20))) {
            Probe::Sat { value, model } => {
                assert!((7..=20).contains(&value));
                assert_eq!(model.int(x), value);
            }
            ref r => panic!("expected Sat, got {r:?}"),
        }
        // Empty window: vacuous refutation, no solve call.
        let calls = prober.solve_calls();
        assert!(matches!(prober.probe(Some((9, 3))), Probe::Unsat));
        assert_eq!(prober.solve_calls(), calls);
    }

    #[test]
    fn stats_are_per_call_monotone_and_attributed() {
        // Regression: guard-bound emission during `probe` must accrue to
        // encode_ms (not be dropped, not pollute solve_ms), and both
        // timers must be non-decreasing across reused probes.
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        let mut last_encode = prober.encode().encode_ms;
        let mut last_solve = prober.stats().solve_ms;
        assert!(last_encode >= 0.0);
        for window in [Some((0, 6)), Some((7, 50)), Some((0, 3)), None] {
            prober.probe(window);
            let e = prober.encode().encode_ms;
            let s = prober.stats().solve_ms;
            assert!(e >= last_encode, "encode_ms regressed: {e} < {last_encode}");
            assert!(s >= last_solve, "solve_ms regressed: {s} < {last_solve}");
            last_encode = e;
            last_solve = s;
        }
    }

    #[test]
    fn independent_probers_do_not_share_stats() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut a = CostProber::new(&p, x, &opts);
        let mut b = CostProber::new(&p, x, &opts);
        a.probe(Some((0, 6)));
        a.probe(Some((7, 30)));
        assert_eq!(a.solve_calls(), 2);
        assert_eq!(b.solve_calls(), 0);
        assert_eq!(b.stats().solve_ms, 0.0);
        b.probe(Some((0, 6)));
        assert_eq!(a.solve_calls(), 2, "a unchanged by b's probe");
        assert_eq!(b.solve_calls(), 1);
    }

    #[test]
    fn certified_windows_pair_with_the_trace() {
        let (p, x) = geq7();
        let opts = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(matches!(prober.probe(Some((0, 6))), Probe::Unsat));
        assert!(matches!(prober.probe(Some((7, 100))), Probe::Sat { .. }));
        let proof = prober.take_proof().expect("certify records a trace");
        assert_eq!(proof.windows.len(), 1, "only the UNSAT probe is certified");
        assert_eq!((proof.windows[0].lo, proof.windows[0].hi), (0, 6));
        let checked = optalloc_sat::check_proof(&proof.log).expect("trace verifies");
        assert!(checked.proves_clause(&proof.windows[0].claim));
        assert!(prober.take_proof().is_none(), "take_proof drains");
    }

    #[test]
    fn take_proof_twice_returns_none_and_keeps_probing_sound() {
        // Edge semantics pin: take_proof is draining — the second call is
        // None even after further probes, because new certified windows
        // would pair with a trace whose prefix was already taken.
        let (p, x) = geq7();
        let opts = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(matches!(prober.probe(Some((0, 3))), Probe::Unsat));
        assert!(prober.take_proof().is_some());
        assert!(prober.take_proof().is_none(), "second take drains to None");
        // Probing still works after the drain…
        assert!(matches!(prober.probe(Some((7, 100))), Probe::Sat { .. }));
        assert!(matches!(prober.probe(Some((4, 6))), Probe::Unsat));
        // …and the post-drain refutation pairs with the *new* trace.
        let proof = prober.take_proof().expect("new trace accumulates");
        assert_eq!(proof.windows.len(), 1);
        assert_eq!((proof.windows[0].lo, proof.windows[0].hi), (4, 6));
    }

    #[test]
    fn take_proof_without_certify_is_always_none() {
        let (p, x) = geq7();
        let mut prober = CostProber::new(&p, x, &MinimizeOptions::default());
        prober.probe(Some((0, 3)));
        assert!(prober.take_proof().is_none());
        assert!(prober.take_proof().is_none());
    }

    #[test]
    fn probe_after_trivially_unsat_never_touches_the_solver() {
        // x ≥ 7 with x ∈ [0, 5] is refuted during encoding (interval
        // narrowing): every probe — bounded, inverted, unbounded — must
        // answer Unsat vacuously without a solve call.
        let mut p = IntProblem::new();
        let x = p.int_var(0, 5);
        p.assert(x.expr().ge(7));
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(prober.trivially_unsat());
        for window in [Some((0, 5)), Some((5, 0)), None] {
            assert!(matches!(prober.probe(window), Probe::Unsat));
        }
        assert_eq!(prober.solve_calls(), 0);
        assert_eq!(prober.stats().solve_ms, 0.0);
    }

    #[test]
    fn empty_and_inverted_windows_are_vacuous() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        // Inverted (lo > hi) windows of all shapes: no solver contact.
        for window in [(9, 3), (1, 0), (i64::MAX, i64::MIN), (8, 7)] {
            assert!(matches!(prober.probe(Some(window)), Probe::Unsat));
        }
        assert_eq!(prober.solve_calls(), 0);
        // Degenerate one-value windows are real probes, not vacuous.
        assert!(matches!(prober.probe(Some((7, 7))), Probe::Sat { .. }));
        assert!(matches!(prober.probe(Some((6, 6))), Probe::Unsat));
        assert_eq!(prober.solve_calls(), 2);
    }

    #[test]
    fn inverted_windows_are_not_certified() {
        // A vacuous refutation has no trace behind it: certifying it would
        // pair a window with a claim the DRAT log never derives.
        let (p, x) = geq7();
        let opts = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(matches!(prober.probe(Some((9, 3))), Probe::Unsat));
        assert!(matches!(prober.probe(Some((0, 6))), Probe::Unsat));
        let proof = prober.take_proof().expect("certify records a trace");
        assert_eq!(proof.windows.len(), 1, "only the real probe is certified");
        assert_eq!((proof.windows[0].lo, proof.windows[0].hi), (0, 6));
    }

    #[test]
    fn owned_prober_outlives_the_source_problem() {
        let opts = MinimizeOptions::default();
        let mut prober: CostProber<'static> = {
            let (p, x) = geq7();
            CostProber::new_owned(p, x, &opts)
        };
        match prober.probe(Some((0, 20))) {
            // A probe yields *some* witness in the window, not the minimum.
            Probe::Sat { value, .. } => assert!((7..=20).contains(&value)),
            ref r => panic!("expected Sat, got {r:?}"),
        }
        assert_eq!(prober.problem().num_asserts(), 1);
    }

    #[test]
    fn unbounded_probe_yields_some_model() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        match prober.probe(None) {
            Probe::Sat { value, .. } => assert!(value >= 7),
            ref r => panic!("expected Sat, got {r:?}"),
        }
    }
}
