//! Tests for the optional model extensions: interferer release jitter in
//! task RTA and the utilization-spread objective.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_analysis::{validate, AnalysisConfig};
use optalloc_model::{Architecture, Ecu, EcuId, Medium, Task, TaskSet};

/// A pair that fits on one ECU without jitter but not with it: the encoder
/// must make placement decisions that the jitter-aware analysis confirms.
fn jitter_sensitive_system() -> (Architecture, TaskSet) {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    // hp: period 10, jitter 4, wcet 3. lp: wcet 5, deadline 9.
    // Without jitter on one ECU: r_lp = 5 + 3 = 8 ≤ 9 (ok co-located).
    // With jitter: r_lp = 5 + ceil((8+4)/10)·3 = 11 > 9 (must split).
    tasks.push(Task::new("hp", 10, 5, vec![(p0, 3), (p1, 3)]).with_jitter(4));
    tasks.push(Task::new("lp", 40, 9, vec![(p0, 5), (p1, 5)]));
    (arch, tasks)
}

#[test]
fn jitter_extension_matches_analysis_semantics() {
    let (arch, tasks) = jitter_sensitive_system();

    // Without the extension, co-location is allowed (eq. 1 exactly).
    let plain = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    let plain_report = validate(
        &arch,
        &tasks,
        &plain.allocation,
        &AnalysisConfig {
            task_jitter: false,
            gateway_service: 2,
        },
    );
    assert!(plain_report.is_feasible());

    // With the extension, every returned allocation must also satisfy the
    // jitter-aware analysis — which forces the pair apart.
    let opts = SolveOptions {
        task_jitter: true,
        ..Default::default()
    };
    let jittery = Optimizer::new(&arch, &tasks)
        .with_options(opts)
        .find_feasible()
        .unwrap();
    assert_ne!(
        jittery.allocation.ecu_of(optalloc_model::TaskId(0)),
        jittery.allocation.ecu_of(optalloc_model::TaskId(1)),
        "jitter-aware encoding must split the pair"
    );
    let report = validate(
        &arch,
        &tasks,
        &jittery.allocation,
        &AnalysisConfig {
            task_jitter: true,
            gateway_service: 2,
        },
    );
    assert!(report.is_feasible(), "{:?}", report.violations);
}

#[test]
fn jitter_extension_can_prove_infeasibility() {
    let (mut arch, mut tasks) = jitter_sensitive_system();
    // Restrict both tasks to p0: with jitter there is no legal placement.
    arch.ecus[1] = Ecu::new("p1").gateway_only();
    tasks.tasks[0].wcet.remove(&EcuId(1));
    tasks.tasks[1].wcet.remove(&EcuId(1));

    assert!(Optimizer::new(&arch, &tasks).find_feasible().is_ok());
    let opts = SolveOptions {
        task_jitter: true,
        ..Default::default()
    };
    match Optimizer::new(&arch, &tasks)
        .with_options(opts)
        .find_feasible()
    {
        Err(optalloc::OptError::Infeasible) => {}
        other => panic!("expected infeasible under jitter, got {other:?}"),
    }
}

#[test]
fn spread_objective_prefers_balance_over_concentration() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    // Two identical 30% tasks: bus-load-free, so concentration (spread 600)
    // and balance (spread 0) are both feasible; the objective must pick 0.
    tasks.push(Task::new("a", 10, 10, vec![(p0, 3), (p1, 3)]));
    tasks.push(Task::new("b", 10, 9, vec![(p0, 3), (p1, 3)]));

    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::UtilizationSpreadPermille)
        .unwrap();
    assert_eq!(result.cost, 0);
    assert_ne!(
        result.solution.allocation.placement[0],
        result.solution.allocation.placement[1]
    );
}
