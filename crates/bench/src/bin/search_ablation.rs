//! **Search-engine ablation** — how much does each axis of the CDCL search
//! core (binary-implication watch lists, tiered clause database, adaptive
//! EMA restarts, in-search vivification) speed up the end-to-end binary
//! search?
//!
//! Table-3-style instances (token-ring task-set scaling), TRT objective,
//! plain incremental binary search ([`optalloc::Strategy::Single`]) so the
//! measured wall-clock is a true single-core number. Six cumulative stages
//! per instance:
//!
//! - `legacy` — [`SearchEngine::legacy`]: the pre-engine solver (generic
//!   two-watched walk, sort-and-halve reduction, Luby restarts);
//! - `+bin` — dedicated binary-implication watch lists;
//! - `+tier` — plus the CORE/TIER2/LOCAL tiered learned-clause database;
//! - `+ema` — plus Glucose-style adaptive restarts with trail blocking;
//! - `+viv` — plus restart-boundary vivification;
//! - `+elim` — plus occurrence-list inprocessing with bounded variable
//!   elimination (the full [`SearchEngine::full`] configuration).
//!
//! The harness asserts the proven optimum is identical across all stages,
//! reports conflicts/propagations/wall-clock per stage, and finishes with a
//! certified full-engine solve on the smallest instance (vivification must
//! keep the DRAT certificate checkable). Results go to
//! `results/search_ablation.{json,txt}` (or the `--json` path).
//!
//! Environment knobs:
//!
//! - `OPTALLOC_ABLATION_SIZES=12,20` — override the task-count grid;
//! - `OPTALLOC_ABLATION_REPS=3` — wall-clock repetitions per stage (the
//!   minimum is reported; conflict counts are deterministic across reps,
//!   only the wall clock is noisy). Default 3 quick, 1 with `--full`;
//! - `OPTALLOC_CHECK_REF=<ref.json>` — regression mode: compare this run's
//!   conflict/propagation counts per (tasks, engine) against the committed
//!   reference rows and exit non-zero if any count drifts by more than
//!   ±20%. Used by the CI perf-smoke job.

use optalloc::{Objective, Optimizer, RestartPolicy, SearchEngine, SolveOptions};
use optalloc_bench::parse_cli;
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (instance, engine stage) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SearchRow {
    instance: String,
    tasks: usize,
    /// `legacy`, `+bin`, `+tier`, `+ema`, `+viv`, or `+elim` (cumulative).
    engine: String,
    /// Proven optimal TRT in ticks (identical across stages — asserted).
    cost: i64,
    conflicts: u64,
    propagations: u64,
    restarts: u64,
    /// EMA restarts suppressed by trail-size blocking.
    restarts_blocked: u64,
    /// Learned clauses strengthened by in-search vivification.
    vivified: u64,
    /// Variables removed by bounded variable elimination (absent in
    /// pre-elim reference files).
    #[serde(default)]
    elim_vars: u64,
    /// Resolvents distributed in their place.
    #[serde(default)]
    elim_resolvents: u64,
    /// High-water mark of retained learned clauses.
    peak_learnts: u64,
    /// Wall-clock ms inside the SAT search, summed over all `SOLVE` calls.
    solve_ms: f64,
    /// End-to-end wall time of the whole minimization (min over reps).
    time_s: f64,
    /// `time_s(legacy) / time_s(this row)` for the same instance.
    speedup_vs_legacy: f64,
}

/// The cumulative stage grid, in measurement order.
fn stages() -> [(&'static str, SearchEngine); 6] {
    let legacy = SearchEngine::legacy();
    [
        ("legacy", legacy),
        (
            "+bin",
            SearchEngine {
                binary_watches: true,
                ..legacy
            },
        ),
        (
            "+tier",
            SearchEngine {
                binary_watches: true,
                tiered_db: true,
                ..legacy
            },
        ),
        (
            "+ema",
            SearchEngine {
                binary_watches: true,
                tiered_db: true,
                restart: RestartPolicy::Ema,
                ..legacy
            },
        ),
        (
            "+viv",
            SearchEngine {
                elim: false,
                ..SearchEngine::full()
            },
        ),
        ("+elim", SearchEngine::full()),
    ]
}

fn render(rows: &[SearchRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>10} {:>12} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8}\n",
        "instance",
        "engine",
        "cost",
        "conflicts",
        "props",
        "restarts",
        "blocked",
        "vivified",
        "elim",
        "peak_lrnt",
        "solve_s",
        "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>8} {:>8} {:>10} {:>12} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8.2} {:>7.2}x\n",
            r.instance,
            r.engine,
            r.cost,
            r.conflicts,
            r.propagations,
            r.restarts,
            r.restarts_blocked,
            r.vivified,
            r.elim_vars,
            r.peak_learnts,
            r.solve_ms / 1e3,
            r.speedup_vs_legacy
        ));
    }
    out
}

/// Regression mode: every (tasks, engine) row present in the reference must
/// match this run's conflict/propagation counts within ±20%. The search is
/// deterministic per configuration, so drift means the engine changed.
fn check_reference(rows: &[SearchRow], ref_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(ref_path)
        .map_err(|e| format!("cannot read reference {ref_path}: {e}"))?;
    let reference: Vec<SearchRow> =
        serde_json::from_str(&text).map_err(|e| format!("bad reference {ref_path}: {e}"))?;
    let within = |now: u64, reference: u64| {
        let lo = reference as f64 * 0.8;
        let hi = reference as f64 * 1.2;
        (lo..=hi).contains(&(now as f64))
    };
    let mut failures = Vec::new();
    let mut checked = 0;
    for r in &reference {
        let Some(now) = rows
            .iter()
            .find(|x| x.tasks == r.tasks && x.engine == r.engine)
        else {
            failures.push(format!("missing row: {} tasks, {}", r.tasks, r.engine));
            continue;
        };
        checked += 1;
        if now.cost != r.cost {
            failures.push(format!(
                "{} tasks, {}: cost {} vs reference {} (optimum must never move)",
                r.tasks, r.engine, now.cost, r.cost
            ));
        }
        if !within(now.conflicts, r.conflicts) {
            failures.push(format!(
                "{} tasks, {}: conflicts {} vs reference {} (> ±20%)",
                r.tasks, r.engine, now.conflicts, r.conflicts
            ));
        }
        if !within(now.propagations, r.propagations) {
            failures.push(format!(
                "{} tasks, {}: propagations {} vs reference {} (> ±20%)",
                r.tasks, r.engine, now.propagations, r.propagations
            ));
        }
    }
    if checked == 0 {
        failures.push(format!("no comparable rows in {ref_path}"));
    }
    if failures.is_empty() {
        eprintln!("perf-smoke check: {checked} rows within ±20% of {ref_path}");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// Certified solve with the full engine: vivification strengthenings are
/// DRAT-logged, so the optimality certificate must still verify.
fn certify_smallest(tasks: usize, objective: &Objective) {
    let w = task_scaling(tasks);
    let opts = SolveOptions {
        max_slot: 24,
        search: SearchEngine::full(),
        certify: true,
        ..Default::default()
    };
    let r = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts)
        .minimize(objective)
        .unwrap_or_else(|e| panic!("certified {tasks}-task solve failed: {e}"));
    let cert = r
        .certificate
        .as_ref()
        .expect("certify: true must produce a verified certificate");
    eprintln!(
        "certified {} tasks with the full engine: {} ({} vivified, {} eliminated)",
        tasks, cert.summary, r.stats.vivified, r.stats.elim_vars
    );
}

fn main() {
    let cli = parse_cli();
    let objective = Objective::TokenRotationTime(MediumId(0));
    let default_sizes: &[usize] = &[12, 20, 30];
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    let reps: usize = std::env::var("OPTALLOC_ABLATION_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(if cli.full { 1 } else { 3 });

    let mut rows: Vec<SearchRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let mut legacy_ref: Option<(i64, f64)> = None; // (cost, time)
        for (stage, engine) in stages() {
            let opts = SolveOptions {
                max_conflicts: if cli.full { None } else { Some(3_000_000) },
                max_slot: if cli.full { 48 } else { 24 },
                search: engine,
                ..Default::default()
            };
            // Each engine configuration is deterministic — conflicts and
            // the optimum repeat exactly — so repetitions only de-noise the
            // wall clock; keep the fastest.
            let mut best: Option<(optalloc::OptimizeReport, f64)> = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(opts.clone())
                    .minimize(&objective)
                    .unwrap_or_else(|e| panic!("{n} tasks, {stage}: {e}"));
                let elapsed = start.elapsed().as_secs_f64();
                if let Some((prev, _)) = &best {
                    assert_eq!(
                        (prev.cost, prev.stats.conflicts),
                        (r.cost, r.stats.conflicts),
                        "{n} tasks, {stage}: nondeterministic search"
                    );
                }
                if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
                    best = Some((r, elapsed));
                }
            }
            let (r, time_s) = best.expect("reps >= 1");
            let (legacy_cost, legacy_time) = *legacy_ref.get_or_insert((r.cost, time_s));
            assert_eq!(
                r.cost, legacy_cost,
                "{n} tasks: {stage} optimum diverged from the legacy engine"
            );
            let row = SearchRow {
                instance: w.name.clone(),
                tasks: n,
                engine: stage.to_string(),
                cost: r.cost,
                conflicts: r.stats.conflicts,
                propagations: r.stats.propagations,
                restarts: r.stats.restarts,
                restarts_blocked: r.stats.restarts_blocked,
                vivified: r.stats.vivified,
                elim_vars: r.stats.elim_vars,
                elim_resolvents: r.stats.elim_resolvents,
                peak_learnts: r.stats.peak_learnts,
                solve_ms: r.stats.solve_ms,
                time_s,
                speedup_vs_legacy: legacy_time / time_s,
            };
            eprintln!(
                "{n} tasks, {stage}: TRT = {} | {} conflicts, {} props, \
                 {} restarts ({} blocked), {} vivified, {} eliminated | \
                 solve {:.2}s, total {:.2}s ({:.2}x)",
                row.cost,
                row.conflicts,
                row.propagations,
                row.restarts,
                row.restarts_blocked,
                row.vivified,
                row.elim_vars,
                row.solve_ms / 1e3,
                row.time_s,
                row.speedup_vs_legacy
            );
            rows.push(row);
        }
    }

    if let Some(&smallest) = sizes.iter().min() {
        certify_smallest(smallest, &objective);
    }

    let table = render(&rows);
    println!("\n== search-engine ablation (identical optima asserted) ==");
    print!("{table}");

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = &cli.json {
        std::fs::write(path, &json).expect("write json");
        eprintln!("(rows written to {})", path.display());
    } else if std::fs::create_dir_all("results").is_ok() {
        std::fs::write("results/search_ablation.json", &json).expect("write json");
        std::fs::write("results/search_ablation.txt", &table).expect("write txt");
        eprintln!("(rows written to results/search_ablation.{{json,txt}})");
    }

    if let Ok(ref_path) = std::env::var("OPTALLOC_CHECK_REF") {
        if let Err(msg) = check_reference(&rows, &ref_path) {
            eprintln!("perf-smoke check FAILED:\n{msg}");
            std::process::exit(1);
        }
    }
}
