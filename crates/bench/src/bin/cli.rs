//! `optalloc-cli` — optimal task allocation from the command line.
//!
//! ```text
//! optalloc-cli generate <name> <out.json>       # dump a bundled workload
//! optalloc-cli solve <workload.json> [options]  # optimize it
//!
//! generate names: tindell43, tindell16, table2-e<N>, table3-t<N>,
//!                 arch-a, arch-b, arch-c
//!
//! solve options:
//!   --objective trt | sumtrt | busload | maxutil | spread | feasible
//!               (trt/busload use medium 0 unless --medium <k> is given)
//!   --medium <k>            target medium index for trt/busload
//!   --max-conflicts <n>     solver budget
//!   --portfolio <n|auto>    race n diversified workers instead of one search
//!                           (auto = one per host core)
//!   --window <n|auto>       parallel window search: n workers over disjoint
//!                           cost sub-windows (auto = one per host core)
//!   --deterministic         bit-stable parallel mode (barrier rounds /
//!                           join all, lowest index wins)
//!   --no-encoder-opt        disable the encoder optimization layer (gate
//!                           hash-consing, interval narrowing, SAT
//!                           preprocessing) — the pre-optimization baseline;
//!                           OPTALLOC_ENCODER_OPT=0 in the environment does
//!                           the same
//!   --certify               record DRAT proof traces, assemble an optimality
//!                           certificate, and verify it (built-in forward
//!                           checker + independent witness replay); exits
//!                           nonzero if the certificate is rejected
//!   --proof <file>          write the certificate's DRAT traces to <file>
//!                           (text DRAT with `c` comments; implies --certify)
//!   --max-slot <n>          upper bound for TDMA slot decision variables
//!   --out <alloc.json>      write the allocation as JSON
//! ```
//!
//! The workload file is the JSON serialization of
//! `optalloc_workloads::Workload` (architecture + task set + a feasibility
//! witness); the output is the optimal `optalloc_model::Allocation`.

use optalloc::{EncoderOpt, Objective, Optimizer, SolveOptions, Strategy};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_workloads::{
    architecture_scaling, generate, table4_workload, task_scaling, Fig2, GenParams, Workload,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  optalloc-cli generate <name> <out.json>\n  \
         optalloc-cli solve <workload.json> [--objective o] [--medium k] \
         [--max-conflicts n] [--portfolio n|auto] [--window n|auto] \
         [--deterministic] [--no-encoder-opt] [--certify] [--proof file] \
         [--max-slot n] [--out alloc.json]"
    );
    ExitCode::from(2)
}

/// `n` workers, or one per host core for `auto`.
fn parse_workers(arg: Option<&String>) -> Option<usize> {
    let arg = arg?;
    if arg == "auto" {
        return Some(host_cores());
    }
    arg.parse().ok()
}

/// Number of cores the host exposes (1 when undetectable).
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bundled(name: &str) -> Option<Workload> {
    if let Some(n) = name.strip_prefix("table2-e") {
        return n.parse().ok().map(architecture_scaling);
    }
    if let Some(n) = name.strip_prefix("table3-t") {
        return n.parse().ok().map(task_scaling);
    }
    match name {
        "tindell43" => Some(generate(&GenParams::tindell43())),
        "tindell16" => Some(generate(&GenParams {
            n_tasks: 16,
            n_chains: 5,
            utilization: 0.35,
            name: "tindell16".into(),
            ..GenParams::tindell43()
        })),
        "arch-a" => Some(table4_workload(Fig2::A, &GenParams::tindell43())),
        "arch-b" => Some(table4_workload(Fig2::B, &GenParams::tindell43())),
        "arch-c" => Some(table4_workload(Fig2::C, &GenParams::tindell43())),
        _ => None,
    }
}

/// Dump every DRAT trace of a verified certificate to one text file.
///
/// Each per-worker proof is prefixed with `c` comment lines naming the
/// cost windows it certifies, so an external checker can be pointed at
/// the matching section.
fn write_proofs(path: &str, cert: &optalloc::intopt::Certificate) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "c optalloc optimality certificate: optimum {}, cost range lower bound {}",
        cert.optimum, cert.cost_lo
    )?;
    for (i, p) in cert.proofs.iter().enumerate() {
        writeln!(f, "c proof {i}: {} certified window(s)", p.windows.len())?;
        for w in &p.windows {
            writeln!(f, "c   window [{}, {}]", w.lo, w.hi)?;
        }
        p.log.write_drat(&mut f)?;
    }
    f.flush()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => {
            let (Some(name), Some(out)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let Some(w) = bundled(name) else {
                eprintln!("unknown workload `{name}`");
                return ExitCode::from(2);
            };
            let json = serde_json::to_string_pretty(&w).expect("serialize");
            if let Err(e) = std::fs::write(out, json) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {out}: {} tasks, {} ECUs, {} media",
                w.tasks.len(),
                w.arch.num_ecus(),
                w.arch.num_media()
            );
            ExitCode::SUCCESS
        }
        Some("solve") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut objective_name = "feasible".to_string();
            let mut medium = 0u32;
            let mut max_conflicts = None;
            let mut out_path: Option<String> = None;
            let mut portfolio: Option<usize> = None;
            let mut window: Option<usize> = None;
            let mut deterministic = false;
            let mut certify = false;
            let mut proof_path: Option<String> = None;
            let mut max_slot: Option<u64> = None;
            let mut encoder_opt = if optalloc_bench::encoder_opt_disabled() {
                EncoderOpt::none()
            } else {
                EncoderOpt::default()
            };
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--objective" => objective_name = it.next().cloned().unwrap_or_default(),
                    "--medium" => medium = it.next().and_then(|s| s.parse().ok()).unwrap_or(0),
                    "--max-conflicts" => max_conflicts = it.next().and_then(|s| s.parse().ok()),
                    "--portfolio" => portfolio = parse_workers(it.next()),
                    "--window" => window = parse_workers(it.next()),
                    "--deterministic" => deterministic = true,
                    "--certify" => certify = true,
                    "--proof" => {
                        proof_path = it.next().cloned();
                        certify = true;
                    }
                    "--max-slot" => max_slot = it.next().and_then(|s| s.parse().ok()),
                    "--no-encoder-opt" => encoder_opt = EncoderOpt::none(),
                    "--out" => out_path = it.next().cloned(),
                    other => {
                        eprintln!("unknown option {other}");
                        return ExitCode::from(2);
                    }
                }
            }

            let input = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let w: Workload = match serde_json::from_str(&input) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("bad workload file: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Err(e) = w.arch.validate() {
                eprintln!("invalid architecture: {e}");
                return ExitCode::from(2);
            }
            if let Err(e) = w.tasks.validate() {
                eprintln!("invalid task set: {e}");
                return ExitCode::from(2);
            }

            let objective = match objective_name.as_str() {
                "trt" => Objective::TokenRotationTime(MediumId(medium)),
                "sumtrt" => Objective::SumTokenRotationTimes,
                "busload" => Objective::BusLoadPermille(MediumId(medium)),
                "maxutil" => Objective::MaxUtilizationPermille,
                "spread" => Objective::UtilizationSpreadPermille,
                "feasible" => Objective::Feasibility,
                other => {
                    eprintln!("unknown objective `{other}`");
                    return ExitCode::from(2);
                }
            };

            let mut opts = SolveOptions {
                max_conflicts,
                strategy: match (window, portfolio) {
                    (Some(workers), _) => Strategy::WindowSearch {
                        workers,
                        deterministic,
                    },
                    (None, Some(workers)) => Strategy::Portfolio {
                        workers,
                        deterministic,
                    },
                    (None, None) => Strategy::Single,
                },
                encoder_opt,
                certify,
                ..Default::default()
            };
            if let Some(ms) = max_slot {
                opts.max_slot = ms;
            }
            let optimizer = Optimizer::new(&w.arch, &w.tasks).with_options(opts);
            let (allocation, cost_line) = if matches!(objective, Objective::Feasibility) {
                match optimizer.find_feasible() {
                    Ok(sol) => (sol.allocation, "feasible".to_string()),
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(1);
                    }
                }
            } else {
                match optimizer.minimize(&objective) {
                    Ok(r) => {
                        let line = match objective {
                            Objective::TokenRotationTime(_) | Objective::SumTokenRotationTimes => {
                                format!(
                                    "optimal {objective_name} = {} ticks ({:.2} ms)",
                                    r.cost,
                                    ticks_to_ms(r.cost as u64)
                                )
                            }
                            _ => format!("optimal {objective_name} = {}", r.cost),
                        };
                        println!(
                            "encoding: {} vars, {} literals; {} SOLVE calls, {:.2}s",
                            r.encode.bool_vars,
                            r.encode.literals,
                            r.solve_calls,
                            r.wall.as_secs_f64()
                        );
                        for worker in &r.workers {
                            println!("  {worker}");
                        }
                        if let Some(cert) = &r.certificate {
                            println!(
                                "certificate VERIFIED: {} — refutations cover [{}, {}], \
                                 witness replayed through independent analysis",
                                cert.summary,
                                cert.certificate.cost_lo,
                                cert.certificate.optimum - 1
                            );
                            if let Some(pp) = &proof_path {
                                if let Err(e) = write_proofs(pp, &cert.certificate) {
                                    eprintln!("cannot write {pp}: {e}");
                                    return ExitCode::from(2);
                                }
                                println!("DRAT traces written to {pp}");
                            }
                        }
                        (r.solution.allocation, line)
                    }
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(1);
                    }
                }
            };
            println!("{cost_line}");
            for (tid, t) in w.tasks.iter() {
                println!(
                    "  {:<12} -> {}",
                    t.name,
                    w.arch.ecu(allocation.ecu_of(tid)).name
                );
            }
            if let Some(out) = out_path {
                let json = serde_json::to_string_pretty(&allocation).expect("serialize");
                if let Err(e) = std::fs::write(&out, json) {
                    eprintln!("cannot write {out}: {e}");
                    return ExitCode::from(2);
                }
                println!("allocation written to {out}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
