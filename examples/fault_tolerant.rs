//! Fault-tolerant allocation with redundant task replicas — the δᵢ
//! separation constraints of the task model (§2).
//!
//! A triple-modular-redundant brake controller must spread its three
//! replicas over distinct ECUs, with each replica feeding a voter. Memory
//! capacities additionally constrain packing. We search for a feasible
//! allocation, show the replicas land on pairwise distinct ECUs, and then
//! tighten the platform until the problem becomes provably infeasible.
//!
//! Run with:
//! ```text
//! cargo run --release --example fault_tolerant
//! ```

use optalloc::{Objective, OptError, Optimizer};
use optalloc_model::{Architecture, Ecu, Medium, Task, TaskId, TaskSet};

fn build_tasks(arch: &Architecture) -> TaskSet {
    let ecus: Vec<_> = arch.iter_ecus().map(|(id, _)| id).collect();
    let anywhere = |c: u64| -> Vec<_> { ecus.iter().map(|&p| (p, c)).collect() };
    let voter = TaskId(3);

    let mut tasks = TaskSet::new();
    // Three replicas, mutually separated, each reporting to the voter.
    for r in 0..3u32 {
        let mut t = Task::new(format!("brake-{r}"), 100, 70, anywhere(20))
            .sends(voter, 4, 50)
            .with_memory(600);
        for other in 0..3u32 {
            if other != r {
                t = t.separated_from(TaskId(other));
            }
        }
        tasks.push(t);
    }
    tasks.push(Task::new("voter", 100, 95, anywhere(10)).with_memory(200));
    tasks
}

fn main() {
    // ---- platform: four ECUs on a CAN bus, limited memory ------------------
    let mut arch = Architecture::new();
    for i in 0..4 {
        arch.push_ecu(Ecu::new(format!("node{i}")).with_memory(1_000));
    }
    let members: Vec<_> = arch.iter_ecus().map(|(id, _)| id).collect();
    arch.push_medium(Medium::priority("can0", members, 2, 1));

    let tasks = build_tasks(&arch);
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::MaxUtilizationPermille)
        .expect("feasible with 4 nodes");

    let alloc = &result.solution.allocation;
    println!(
        "placement (max utilization {:.1}%):",
        result.cost as f64 / 10.0
    );
    for (tid, task) in tasks.iter() {
        println!("  {:<8} -> {}", task.name, arch.ecu(alloc.ecu_of(tid)).name);
    }

    // Replicas must be pairwise separated.
    let replica_ecus: Vec<_> = (0..3).map(|i| alloc.ecu_of(TaskId(i))).collect();
    for i in 0..3 {
        for j in (i + 1)..3 {
            assert_ne!(replica_ecus[i], replica_ecus[j], "replicas co-located!");
        }
    }
    println!("replicas verified on pairwise distinct nodes ✓");

    // ---- shrink the platform: 2 nodes cannot separate 3 replicas ----------
    let mut small = Architecture::new();
    for i in 0..2 {
        small.push_ecu(Ecu::new(format!("node{i}")).with_memory(1_000));
    }
    let members: Vec<_> = small.iter_ecus().map(|(id, _)| id).collect();
    small.push_medium(Medium::priority("can0", members, 2, 1));
    let tasks_small = build_tasks(&small);

    match Optimizer::new(&small, &tasks_small).find_feasible() {
        Err(OptError::Infeasible) => {
            println!("2-node platform: proven infeasible (3 replicas need 3 nodes) ✓")
        }
        other => panic!("expected a proof of infeasibility, got {other:?}"),
    }
}
