//! Campaign runner: seed loop → generate → check relations → shrink →
//! persist.
//!
//! A campaign is fully described by `(seed, iterations, relations, gen
//! config)`; iteration `i` derives its instance seed from the campaign
//! seed through a splitmix step, so `replay(seed)` reproduces any single
//! iteration without re-running the campaign. Violations are shrunk to
//! locally-minimal specs and written as self-contained JSON regression
//! files; the summary is serializable for CI consumption.

use crate::gen::{gen_spec, GenConfig};
use crate::relations::{check_relation, RelationKind};
use crate::shrink::shrink;
use crate::spec::InstanceSpec;
use optalloc_obs::{Obs, Phase};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Everything that defines one campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; iteration `i` uses `splitmix(seed + i)`.
    pub seed: u64,
    /// Number of instances to generate and check.
    pub iterations: u64,
    /// Wall-clock cap; the campaign stops early (recorded in the summary).
    pub time_limit: Option<Duration>,
    /// Relations to check on every instance.
    pub relations: Vec<RelationKind>,
    /// Turn on checked mode (deep solver-invariant walks) for every solve.
    pub paranoid: bool,
    /// Generator size dials.
    pub gen: GenConfig,
    /// Where shrunk reproducers are written; `None` = don't persist.
    pub regressions_dir: Option<PathBuf>,
    /// Where every *violating* instance seed is appended (one decimal seed
    /// per line) so later campaigns can re-check known-bad inputs first.
    pub corpus_file: Option<PathBuf>,
    /// Stop after this many violations (0 = unlimited).
    pub max_violations: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0,
            iterations: 100,
            time_limit: None,
            relations: RelationKind::all(),
            paranoid: false,
            gen: GenConfig::default(),
            regressions_dir: None,
            corpus_file: None,
            max_violations: 5,
        }
    }
}

/// One confirmed, shrunk metamorphic violation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Instance seed (regenerate with `gen_spec(seed, gen)` or replay with
    /// `optalloc-fuzz replay <seed>`).
    pub seed: u64,
    /// Name of the violated relation.
    pub relation: String,
    /// The violation message (or panic payload) from the original check.
    pub message: String,
    /// Task count of the shrunk reproducer.
    pub shrunk_tasks: usize,
    /// Path of the persisted regression file, if any.
    pub regression_file: Option<String>,
}

/// A self-contained regression file: everything needed to re-check the
/// failure with no generator or RNG involved.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegressionFile {
    /// Format tag for forward compatibility.
    pub schema: String,
    /// Instance seed the violation came from.
    pub seed: u64,
    /// Violated relation.
    pub relation: String,
    /// Original violation message.
    pub message: String,
    /// The shrunk instance.
    pub spec: InstanceSpec,
}

/// Machine-readable campaign result (printed as JSON by `optalloc-fuzz`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// The campaign's master seed.
    pub seed: u64,
    /// Iterations actually executed.
    pub iterations_run: u64,
    /// Iterations requested.
    pub iterations_requested: u64,
    /// `true` when the wall-clock cap stopped the campaign early.
    pub timed_out: bool,
    /// Relation checks that completed with a verdict.
    pub checks_passed: u64,
    /// Relation checks skipped (conflict budget on some probe).
    pub checks_skipped: u64,
    /// Confirmed violations, shrunk.
    pub violations: Vec<ViolationRecord>,
    /// Wall-clock time of the whole campaign in milliseconds.
    pub wall_ms: u64,
    /// Per-relation timing, slowest total first — every primary check runs
    /// under a `relation` span (see `docs/OBSERVABILITY.md`) and this is
    /// their aggregation, so slow relations can be ranked from the JSON
    /// summary alone.
    #[serde(default)]
    pub profile: Vec<RelationProfile>,
}

/// Aggregated span summary of one relation across a campaign.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RelationProfile {
    /// Relation name.
    pub relation: String,
    /// Primary checks timed (shrink re-checks are excluded).
    pub checks: u64,
    /// Total milliseconds across those checks.
    pub total_ms: f64,
    /// Slowest single check in milliseconds.
    pub max_ms: f64,
    /// Instance seed of that slowest check — feed it to
    /// `optalloc-fuzz replay` to dig in.
    pub slowest_seed: u64,
}

impl CampaignSummary {
    /// `true` when the campaign found no violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// SplitMix64 — decorrelates per-iteration instance seeds from the
/// campaign counter.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Runs one relation check, converting panics (paranoid-mode assertion
/// failures deep in the solver) into violations. The process-global panic
/// hook is silenced around the call so expected panics don't spam stderr;
/// the payload becomes the violation message.
fn check_quietly(
    kind: RelationKind,
    spec: &InstanceSpec,
    seed: u64,
    paranoid: bool,
) -> Result<bool, String> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check_relation(kind, spec, seed, paranoid)
    }));
    std::panic::set_hook(prev_hook);
    match outcome {
        Ok(verdict) => verdict,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            Err(format!("panic during check: {msg}"))
        }
    }
}

fn persist_regression(dir: &Path, record: &RegressionFile) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!(
        "fuzz-{}-{:016x}.json",
        record.relation, record.seed
    ));
    let json = serde_json::to_string_pretty(record).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

fn append_corpus(file: &Path, seed: u64) {
    use std::io::Write;
    if let Some(parent) = file.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(file)
    {
        let _ = writeln!(f, "{seed}");
    }
}

/// Runs a campaign. `progress` receives one line per event worth narrating
/// (pass `|_| {}` to stay silent).
pub fn run_campaign<P: FnMut(&str)>(cfg: &CampaignConfig, mut progress: P) -> CampaignSummary {
    let start = Instant::now();
    let mut summary = CampaignSummary {
        seed: cfg.seed,
        iterations_run: 0,
        iterations_requested: cfg.iterations,
        timed_out: false,
        checks_passed: 0,
        checks_skipped: 0,
        violations: Vec::new(),
        wall_ms: 0,
        profile: Vec::new(),
    };
    // Every primary check runs under a `relation` span; the aggregation
    // below is what lands in the summary's `profile`.
    let obs = Obs::enabled();
    let mut profile: HashMap<&'static str, RelationProfile> = HashMap::new();
    'iters: for i in 0..cfg.iterations {
        if let Some(limit) = cfg.time_limit {
            if start.elapsed() >= limit {
                summary.timed_out = true;
                break;
            }
        }
        let seed = splitmix(cfg.seed.wrapping_add(i));
        let spec = gen_spec(seed, &cfg.gen);
        summary.iterations_run += 1;
        for &kind in &cfg.relations {
            let mut sw = obs.stopwatch(Phase::Relation);
            sw.attr("relation", kind.name());
            sw.attr("seed", format!("{seed:#018x}"));
            let verdict = check_quietly(kind, &spec, seed, cfg.paranoid);
            let ms = sw.finish();
            let p = profile
                .entry(kind.name())
                .or_insert_with(|| RelationProfile {
                    relation: kind.name().to_string(),
                    ..RelationProfile::default()
                });
            p.checks += 1;
            p.total_ms += ms;
            if ms > p.max_ms {
                p.max_ms = ms;
                p.slowest_seed = seed;
            }
            match verdict {
                Ok(true) => summary.checks_passed += 1,
                Ok(false) => summary.checks_skipped += 1,
                Err(message) => {
                    progress(&format!(
                        "violation: relation '{}' on seed {seed:#018x}: {message}",
                        kind.name()
                    ));
                    let shrunk = shrink(&spec, |cand| {
                        check_quietly(kind, cand, seed, cfg.paranoid).is_err()
                    });
                    progress(&format!(
                        "shrunk to {} tasks / {} media",
                        shrunk.tasks.len(),
                        shrunk.media.len()
                    ));
                    let file = RegressionFile {
                        schema: "optalloc-fuzz-regression-v1".to_string(),
                        seed,
                        relation: kind.name().to_string(),
                        message: message.clone(),
                        spec: shrunk.clone(),
                    };
                    let regression_file = match &cfg.regressions_dir {
                        Some(dir) => match persist_regression(dir, &file) {
                            Ok(path) => {
                                progress(&format!("wrote {}", path.display()));
                                Some(path.display().to_string())
                            }
                            Err(e) => {
                                progress(&format!("could not persist regression: {e}"));
                                None
                            }
                        },
                        None => None,
                    };
                    if let Some(corpus) = &cfg.corpus_file {
                        append_corpus(corpus, seed);
                    }
                    summary.violations.push(ViolationRecord {
                        seed,
                        relation: kind.name().to_string(),
                        message,
                        shrunk_tasks: shrunk.tasks.len(),
                        regression_file,
                    });
                    if cfg.max_violations > 0 && summary.violations.len() >= cfg.max_violations {
                        progress("violation cap reached, stopping");
                        break 'iters;
                    }
                    // Remaining relations on a known-bad seed add noise,
                    // not information.
                    continue 'iters;
                }
            }
        }
    }
    summary.wall_ms = start.elapsed().as_millis() as u64;
    summary.profile = profile.into_values().collect();
    summary
        .profile
        .sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
    summary
}

/// Re-runs every relation on the instance a single seed generates;
/// returns the per-relation verdicts. This is `optalloc-fuzz replay`.
pub fn replay(
    seed: u64,
    gen: &GenConfig,
    relations: &[RelationKind],
    paranoid: bool,
) -> Vec<(RelationKind, Result<bool, String>)> {
    let spec = gen_spec(seed, gen);
    relations
        .iter()
        .map(|&kind| (kind, check_quietly(kind, &spec, seed, paranoid)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Not a proof, but distinct inputs must give distinct outputs on a
        // decent sample if the constants are typed correctly.
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let s = CampaignSummary {
            seed: 7,
            iterations_run: 3,
            iterations_requested: 5,
            timed_out: true,
            checks_passed: 12,
            checks_skipped: 1,
            violations: vec![ViolationRecord {
                seed: 0xdead,
                relation: "rename".into(),
                message: "boom".into(),
                shrunk_tasks: 2,
                regression_file: None,
            }],
            wall_ms: 1234,
            profile: vec![RelationProfile {
                relation: "rename".into(),
                checks: 13,
                total_ms: 98.5,
                max_ms: 40.25,
                slowest_seed: 0xbeef,
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: CampaignSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.violations.len(), 1);
        assert!(!back.clean());
        assert_eq!(back.profile[0].relation, "rename");
        assert_eq!(back.profile[0].slowest_seed, 0xbeef);
    }

    #[test]
    fn campaign_profiles_every_relation() {
        let cfg = CampaignConfig {
            seed: 3,
            iterations: 2,
            relations: vec![RelationKind::all()[0], RelationKind::all()[1]],
            gen: GenConfig {
                max_tasks: 4,
                max_media: 1,
            },
            ..CampaignConfig::default()
        };
        let summary = run_campaign(&cfg, |_| {});
        assert_eq!(summary.profile.len(), 2, "{:?}", summary.profile);
        for p in &summary.profile {
            assert_eq!(p.checks, summary.iterations_run);
            assert!(p.total_ms >= p.max_ms);
            assert!(p.max_ms >= 0.0);
        }
        // Ranked slowest-total first.
        assert!(summary.profile[0].total_ms >= summary.profile[1].total_ms);
    }
}
