//! Instance deltas: small, typed mutations of an allocation instance.
//!
//! A long-running service rarely sees *unrelated* instances back to back —
//! it sees the **same** instance with a WCET re-measured, a deadline
//! tightened, a task added or retired, or a cost bound imposed by the
//! caller. [`InstanceDelta`] captures exactly those mutations so the
//! service can derive the next instance from the previous one instead of
//! shipping a full model, and so the warm-start engine
//! ([`optalloc_intopt::WarmEngine`]) can decide how much of the previous
//! search to keep:
//!
//! * a pure [`InstanceDelta::CostBounds`] delta leaves the formula
//!   untouched — the retained solver and its learned clauses survive;
//! * every model mutation (WCET, deadline, add/remove) changes encoded
//!   constants, so the engine re-encodes and keeps only the *validated*
//!   optimum hint. Soundness never depends on this classification: the
//!   engine re-derives it structurally from the encoded problems.
//!
//! Deltas are applied **transactionally** by [`apply_deltas`]: either every
//! op applies and the mutated task set passes [`TaskSet::validate`], or the
//! instance is left untouched and a typed [`DeltaError`] names the first
//! offending op.

use optalloc_model::{Architecture, EcuId, Task, TaskId, TaskSet, Time};
use serde::{Deserialize, Serialize};

/// One mutation of an allocation instance.
///
/// Tasks and ECUs are addressed **by name**, not by id: names are stable
/// under the canonical reordering the service's fingerprint layer performs,
/// and ids shift when tasks are removed. The one exception is
/// [`InstanceDelta::AddTask`], which carries a full model [`Task`] whose
/// message targets and separation partners use the [`TaskId`]s of the
/// instance *being mutated* (ids are dense indices, so a new task may also
/// be referenced by id `len` from ops later in the same batch — but
/// cross-references are validated, not trusted).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum InstanceDelta {
    /// Re-measure (or newly permit) the WCET of `task` on `ecu`. Adding an
    /// entry for an ECU the task could not previously run on *widens* the
    /// placement permission set πᵢ.
    SetWcet {
        /// Task name.
        task: String,
        /// ECU name.
        ecu: String,
        /// New worst-case execution time in ticks (must be ≥ 1).
        wcet: Time,
    },
    /// Forbid `task` from running on `ecu` (removes the WCET entry and with
    /// it the placement permission).
    ForbidEcu {
        /// Task name.
        task: String,
        /// ECU name.
        ecu: String,
    },
    /// Replace the relative deadline of `task`.
    SetDeadline {
        /// Task name.
        task: String,
        /// New relative deadline in ticks (must be ≥ 1).
        deadline: Time,
    },
    /// Append a new task. Its name must be unused; its message targets and
    /// separation partners must reference existing tasks (by id).
    AddTask(Task),
    /// Remove `task`. Messages *sent to* it by other tasks are dropped and
    /// separation references to it are erased; all higher [`TaskId`]s shift
    /// down by one (ids are dense indices).
    RemoveTask {
        /// Task name.
        task: String,
    },
    /// Constrain the cost search window without touching the model. The
    /// engine intersects this with the objective's own range; it reaches
    /// the solver as a probe window, so a bound that excludes the true
    /// optimum yields an *infeasible-in-window* verdict, never a wrong
    /// optimum.
    CostBounds {
        /// Certified-from-outside lower bound (`None` = unchanged).
        lower: Option<i64>,
        /// Imposed upper bound (`None` = unchanged).
        upper: Option<i64>,
    },
}

/// The cost window accumulated from [`InstanceDelta::CostBounds`] ops —
/// the intersection of every bound seen in the batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostWindow {
    /// Tightest lower bound requested, if any.
    pub lower: Option<i64>,
    /// Tightest upper bound requested, if any.
    pub upper: Option<i64>,
}

impl CostWindow {
    /// Folds another bound pair in (lattice-style: max of lowers, min of
    /// uppers).
    fn fold(&mut self, lower: Option<i64>, upper: Option<i64>) {
        self.lower = match (self.lower, lower) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.upper = match (self.upper, upper) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// `true` when no bound was requested.
    pub fn is_unbounded(&self) -> bool {
        self.lower.is_none() && self.upper.is_none()
    }
}

/// Why a delta batch was rejected (the instance is left unchanged).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// An op referenced a task name the instance does not contain.
    UnknownTask(String),
    /// An op referenced an ECU name the architecture does not contain.
    UnknownEcu(String),
    /// An op carried a value the model rejects (zero WCET, zero deadline,
    /// duplicate task name, dangling id reference, last placement removed).
    Invalid(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownTask(t) => write!(f, "unknown task \"{t}\""),
            DeltaError::UnknownEcu(e) => write!(f, "unknown ECU \"{e}\""),
            DeltaError::Invalid(msg) => write!(f, "invalid delta: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

fn task_id_by_name(tasks: &TaskSet, name: &str) -> Result<TaskId, DeltaError> {
    tasks
        .iter()
        .find(|(_, t)| t.name == name)
        .map(|(id, _)| id)
        .ok_or_else(|| DeltaError::UnknownTask(name.to_string()))
}

fn ecu_id_by_name(arch: &Architecture, name: &str) -> Result<EcuId, DeltaError> {
    arch.iter_ecus()
        .find(|(_, e)| e.name == name)
        .map(|(id, _)| id)
        .ok_or_else(|| DeltaError::UnknownEcu(name.to_string()))
}

/// Removes the task at `gone` and rewrites every dangling reference:
/// messages to it are dropped, separation entries erased, and all ids above
/// it shifted down (ids are dense vector indices).
fn remove_task(tasks: &mut TaskSet, gone: TaskId) {
    tasks.tasks.remove(gone.index());
    let shift = |id: TaskId| {
        if id.0 > gone.0 {
            TaskId(id.0 - 1)
        } else {
            id
        }
    };
    for t in &mut tasks.tasks {
        t.messages.retain(|m| m.to != gone);
        for m in &mut t.messages {
            m.to = shift(m.to);
        }
        t.separation = t
            .separation
            .iter()
            .filter(|&&s| s != gone)
            .map(|&s| shift(s))
            .collect();
    }
}

fn apply_one(
    arch: &Architecture,
    tasks: &mut TaskSet,
    delta: &InstanceDelta,
    window: &mut CostWindow,
) -> Result<(), DeltaError> {
    match delta {
        InstanceDelta::SetWcet { task, ecu, wcet } => {
            if *wcet == 0 {
                return Err(DeltaError::Invalid(format!(
                    "WCET of \"{task}\" on \"{ecu}\" must be ≥ 1 (use ForbidEcu to \
                     remove a placement)"
                )));
            }
            let tid = task_id_by_name(tasks, task)?;
            let eid = ecu_id_by_name(arch, ecu)?;
            tasks.tasks[tid.index()].wcet.insert(eid, *wcet);
        }
        InstanceDelta::ForbidEcu { task, ecu } => {
            let tid = task_id_by_name(tasks, task)?;
            let eid = ecu_id_by_name(arch, ecu)?;
            let t = &mut tasks.tasks[tid.index()];
            if t.wcet.remove(&eid).is_none() {
                return Err(DeltaError::Invalid(format!(
                    "\"{task}\" was already forbidden on \"{ecu}\""
                )));
            }
            if t.wcet.is_empty() {
                return Err(DeltaError::Invalid(format!(
                    "removing \"{ecu}\" leaves \"{task}\" with no allowed ECU"
                )));
            }
        }
        InstanceDelta::SetDeadline { task, deadline } => {
            if *deadline == 0 {
                return Err(DeltaError::Invalid(format!(
                    "deadline of \"{task}\" must be ≥ 1"
                )));
            }
            let tid = task_id_by_name(tasks, task)?;
            tasks.tasks[tid.index()].deadline = *deadline;
        }
        InstanceDelta::AddTask(task) => {
            if tasks.iter().any(|(_, t)| t.name == task.name) {
                return Err(DeltaError::Invalid(format!(
                    "a task named \"{}\" already exists",
                    task.name
                )));
            }
            tasks.push(task.clone());
        }
        InstanceDelta::RemoveTask { task } => {
            let tid = task_id_by_name(tasks, task)?;
            remove_task(tasks, tid);
        }
        InstanceDelta::CostBounds { lower, upper } => {
            window.fold(*lower, *upper);
        }
    }
    Ok(())
}

/// Applies a batch of deltas to `(arch, tasks)` transactionally.
///
/// On success the mutated task set replaces `tasks` (it already passed
/// [`TaskSet::validate`]) and the accumulated [`CostWindow`] is returned.
/// On any error `tasks` is left **untouched** and the first offending op's
/// [`DeltaError`] is returned — a rejected batch never half-applies.
pub fn apply_deltas(
    arch: &Architecture,
    tasks: &mut TaskSet,
    deltas: &[InstanceDelta],
) -> Result<CostWindow, DeltaError> {
    let mut staged = tasks.clone();
    let mut window = CostWindow::default();
    for d in deltas {
        apply_one(arch, &mut staged, d, &mut window)?;
    }
    staged.validate().map_err(DeltaError::Invalid)?;
    *tasks = staged;
    Ok(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium};

    fn instance() -> (Architecture, TaskSet) {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
        let mut tasks = TaskSet::new();
        let a = tasks.push(Task::new("a", 50, 50, vec![(p0, 10), (p1, 10)]));
        tasks.push(Task::new("b", 50, 40, vec![(p0, 15), (p1, 15)]).sends(a, 4, 25));
        tasks.push(Task::new("c", 50, 50, vec![(p0, 5)]).separated_from(a));
        (arch, tasks)
    }

    #[test]
    fn wcet_and_deadline_edits_apply_by_name() {
        let (arch, mut tasks) = instance();
        let w = apply_deltas(
            &arch,
            &mut tasks,
            &[
                InstanceDelta::SetWcet {
                    task: "a".into(),
                    ecu: "p1".into(),
                    wcet: 22,
                },
                InstanceDelta::SetDeadline {
                    task: "b".into(),
                    deadline: 33,
                },
            ],
        )
        .unwrap();
        assert!(w.is_unbounded());
        assert_eq!(tasks.task(TaskId(0)).wcet_on(EcuId(1)), Some(22));
        assert_eq!(tasks.task(TaskId(1)).deadline, 33);
    }

    #[test]
    fn set_wcet_can_widen_the_permission_set() {
        let (arch, mut tasks) = instance();
        assert!(!tasks.task(TaskId(2)).may_run_on(EcuId(1)));
        apply_deltas(
            &arch,
            &mut tasks,
            &[InstanceDelta::SetWcet {
                task: "c".into(),
                ecu: "p1".into(),
                wcet: 7,
            }],
        )
        .unwrap();
        assert_eq!(tasks.task(TaskId(2)).wcet_on(EcuId(1)), Some(7));
    }

    #[test]
    fn forbid_ecu_protects_the_last_placement() {
        let (arch, mut tasks) = instance();
        let err = apply_deltas(
            &arch,
            &mut tasks,
            &[InstanceDelta::ForbidEcu {
                task: "c".into(),
                ecu: "p0".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, DeltaError::Invalid(_)));
        // Transactional: the failed batch changed nothing.
        assert!(tasks.task(TaskId(2)).may_run_on(EcuId(0)));
    }

    #[test]
    fn remove_task_rewrites_references_and_shifts_ids() {
        let (arch, mut tasks) = instance();
        // Removing "a" (id 0): b's message to it is dropped, c's separation
        // entry erased, and b/c shift down to ids 0/1.
        apply_deltas(
            &arch,
            &mut tasks,
            &[InstanceDelta::RemoveTask { task: "a".into() }],
        )
        .unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks.task(TaskId(0)).name, "b");
        assert!(tasks.task(TaskId(0)).messages.is_empty());
        assert_eq!(tasks.task(TaskId(1)).name, "c");
        assert!(tasks.task(TaskId(1)).separation.is_empty());
        assert!(tasks.validate().is_ok());
    }

    #[test]
    fn remove_task_preserves_unrelated_references() {
        let (arch, mut tasks) = instance();
        // d sends to c; removing a must shift the target id (2 → 1), not
        // drop the message.
        tasks.push(Task::new("d", 50, 50, vec![(EcuId(0), 1)]).sends(TaskId(2), 2, 30));
        apply_deltas(
            &arch,
            &mut tasks,
            &[InstanceDelta::RemoveTask { task: "a".into() }],
        )
        .unwrap();
        let d = tasks.iter().find(|(_, t)| t.name == "d").unwrap().1;
        assert_eq!(d.messages.len(), 1);
        assert_eq!(d.messages[0].to, TaskId(1));
        assert_eq!(tasks.task(TaskId(1)).name, "c");
    }

    #[test]
    fn add_task_rejects_duplicate_names_and_dangling_ids() {
        let (arch, mut tasks) = instance();
        let dup = Task::new("a", 10, 10, vec![(EcuId(0), 1)]);
        assert!(matches!(
            apply_deltas(&arch, &mut tasks, &[InstanceDelta::AddTask(dup)]),
            Err(DeltaError::Invalid(_))
        ));
        let dangling = Task::new("e", 10, 10, vec![(EcuId(0), 1)]).sends(TaskId(40), 1, 5);
        assert!(matches!(
            apply_deltas(&arch, &mut tasks, &[InstanceDelta::AddTask(dangling)]),
            Err(DeltaError::Invalid(_))
        ));
        assert_eq!(tasks.len(), 3, "rejected batches change nothing");
    }

    #[test]
    fn cost_bounds_fold_as_a_lattice() {
        let (arch, mut tasks) = instance();
        let w = apply_deltas(
            &arch,
            &mut tasks,
            &[
                InstanceDelta::CostBounds {
                    lower: Some(3),
                    upper: Some(90),
                },
                InstanceDelta::CostBounds {
                    lower: Some(10),
                    upper: None,
                },
                InstanceDelta::CostBounds {
                    lower: Some(5),
                    upper: Some(70),
                },
            ],
        )
        .unwrap();
        assert_eq!(
            w,
            CostWindow {
                lower: Some(10),
                upper: Some(70)
            }
        );
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let (arch, mut tasks) = instance();
        assert_eq!(
            apply_deltas(
                &arch,
                &mut tasks,
                &[InstanceDelta::SetDeadline {
                    task: "ghost".into(),
                    deadline: 9
                }]
            ),
            Err(DeltaError::UnknownTask("ghost".into()))
        );
        assert_eq!(
            apply_deltas(
                &arch,
                &mut tasks,
                &[InstanceDelta::SetWcet {
                    task: "a".into(),
                    ecu: "p9".into(),
                    wcet: 1
                }]
            ),
            Err(DeltaError::UnknownEcu("p9".into()))
        );
    }

    #[test]
    fn deltas_round_trip_through_serde() {
        let ops = vec![
            InstanceDelta::SetWcet {
                task: "a".into(),
                ecu: "p0".into(),
                wcet: 12,
            },
            InstanceDelta::RemoveTask { task: "b".into() },
            InstanceDelta::CostBounds {
                lower: None,
                upper: Some(400),
            },
        ];
        let json = serde_json::to_string(&ops).unwrap();
        let back: Vec<InstanceDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ops);
    }
}
