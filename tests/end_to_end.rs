//! End-to-end pipeline tests on generated workloads: generate → encode →
//! optimize → decode → independently validate, plus the optimality
//! ordering against the heuristic baselines.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_analysis::{token_rotation_time, validate, AnalysisConfig};
use optalloc_heuristics::{anneal, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn small(seed: u64) -> GenParams {
    GenParams {
        name: format!("e2e-{seed}"),
        n_tasks: 9,
        n_chains: 3,
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: true,
        deadline_slack: 1.5,
    }
}

#[test]
fn optimum_beats_planted_and_sa_across_seeds() {
    let ring = MediumId(0);
    for seed in [1u64, 2, 3, 4, 5] {
        let w = generate(&small(seed));
        let result = Optimizer::new(&w.arch, &w.tasks)
            .with_options(SolveOptions {
                max_slot: 16,
                ..Default::default()
            })
            .minimize(&Objective::TokenRotationTime(ring))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        // The optimum is feasible and never worse than the planted witness.
        assert!(result.solution.report.is_feasible(), "seed {seed}");
        let planted_trt =
            token_rotation_time(&w.arch, &w.planted, ring).expect("ring has a TRT") as i64;
        assert!(
            result.cost <= planted_trt,
            "seed {seed}: optimal {} > planted {planted_trt}",
            result.cost
        );

        // …and never worse than simulated annealing.
        let sa = anneal(
            &w.arch,
            &w.tasks,
            &HeuristicObjective::TokenRotationTime(ring),
            &SaParams {
                restarts: 2,
                iters_per_stage: 150,
                stages: 30,
                max_slot: 16,
                ..Default::default()
            },
        );
        if sa.feasible {
            assert!(
                result.cost <= sa.objective,
                "seed {seed}: optimal {} > SA {}",
                result.cost,
                sa.objective
            );
        }
    }
}

#[test]
fn can_variant_bus_load_optimum_is_feasible_and_bounded() {
    let can = MediumId(0);
    for seed in [11u64, 12] {
        let params = GenParams {
            token_ring: false,
            ..small(seed)
        };
        let w = generate(&params);
        let result = Optimizer::new(&w.arch, &w.tasks)
            .minimize(&Objective::BusLoadPermille(can))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(result.solution.report.is_feasible());
        let planted_load =
            optalloc_analysis::bus_load_permille(&w.arch, &w.tasks, &w.planted, can) as i64;
        assert!(
            result.cost <= planted_load,
            "seed {seed}: optimal {} > planted {planted_load}",
            result.cost
        );
    }
}

#[test]
fn returned_allocation_revalidates_under_fresh_config() {
    // The allocation the optimizer returns must validate with an
    // independently constructed analysis configuration.
    let w = generate(&small(21));
    let opt = Optimizer::new(&w.arch, &w.tasks);
    let sol = opt.find_feasible().expect("planted-feasible");
    let report = validate(
        &w.arch,
        &w.tasks,
        &sol.allocation,
        &AnalysisConfig::default(),
    );
    assert!(report.is_feasible(), "{:?}", report.violations);
    // Response times in the returned report match a recomputation.
    assert_eq!(report.task_response_times, sol.report.task_response_times);
}

#[test]
fn max_utilization_objective_balances() {
    let w = generate(&small(31));
    let result = Optimizer::new(&w.arch, &w.tasks)
        .minimize(&Objective::MaxUtilizationPermille)
        .unwrap();
    let utils = optalloc_analysis::ecu_utilization_permille(
        &w.tasks,
        &result.solution.allocation,
        w.arch.num_ecus(),
    );
    assert_eq!(*utils.iter().max().unwrap() as i64, result.cost);
}
