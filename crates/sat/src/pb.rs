//! Pseudo-Boolean (PB) linear constraints.
//!
//! A PB constraint is a linear inequality over literals, e.g.
//! `3·x + 2·¬y + z ≥ 4`. The paper's GOBLIN back-end solves conjunctions of
//! such constraints directly; we do the same, normalizing every input
//! constraint to the canonical form
//!
//! ```text
//! Σ aᵢ·lᵢ ≥ k      with  aᵢ > 0,  k > 0,  lᵢ distinct variables
//! ```
//!
//! Normalization handles negative coefficients (via `a·l = a − a·¬l`),
//! duplicate literals, complementary pairs, coefficient clamping at the
//! bound, and detects trivially true/false constraints and units.

use crate::types::Lit;

/// A linear term `coef · lit` in a PB constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PbTerm {
    /// The literal (counts 1 when true, 0 when false).
    pub lit: Lit,
    /// Its integer coefficient (may be negative before normalization).
    pub coef: i64,
}

impl PbTerm {
    /// Convenience constructor.
    pub fn new(lit: Lit, coef: i64) -> PbTerm {
        PbTerm { lit, coef }
    }
}

/// Comparison operator of an input PB constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PbOp {
    /// `Σ aᵢ·lᵢ ≥ k`
    Ge,
    /// `Σ aᵢ·lᵢ ≤ k`
    Le,
    /// `Σ aᵢ·lᵢ = k`
    Eq,
}

/// Outcome of normalizing one `Σ aᵢ·lᵢ ≥ k` inequality.
#[derive(Debug, PartialEq, Eq)]
pub enum Normalized {
    /// The constraint holds under every assignment.
    TriviallyTrue,
    /// The constraint holds under no assignment.
    TriviallyFalse,
    /// The constraint reduces to a single forced literal.
    Unit(Lit),
    /// A genuine constraint in canonical form.
    Constraint {
        /// Distinct literals, paired with `coefs`.
        lits: Vec<Lit>,
        /// Positive coefficients, clamped at `bound`.
        coefs: Vec<u64>,
        /// Positive right-hand side.
        bound: u64,
    },
}

/// Normalizes `Σ terms ≥ bound` into canonical form.
///
/// Works on one `≥` inequality; [`PbOp::Le`] and [`PbOp::Eq`] inputs are
/// reduced to `≥` form by [`to_ge_constraints`].
pub fn normalize_ge(terms: &[PbTerm], mut bound: i64) -> Normalized {
    // Merge coefficients per variable, folding signs: a term on ¬x with
    // coefficient a is the same as `a − a·x`, i.e. coefficient −a on x plus
    // `a` on the bound side. Track everything as a coefficient on the
    // *positive* literal.
    let mut by_var: Vec<(u32, i64)> = Vec::with_capacity(terms.len());
    for t in terms {
        if t.coef == 0 {
            continue;
        }
        let (var, coef) = if t.lit.is_positive() {
            (t.lit.var().0, t.coef)
        } else {
            bound -= t.coef;
            (t.lit.var().0, -t.coef)
        };
        by_var.push((var, coef));
    }
    by_var.sort_unstable_by_key(|&(v, _)| v);
    by_var.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 += b.1;
            true
        } else {
            false
        }
    });

    // Re-express each merged coefficient as a positive coefficient on the
    // appropriate sign of the literal.
    let mut lits = Vec::with_capacity(by_var.len());
    let mut coefs: Vec<u64> = Vec::with_capacity(by_var.len());
    for (var, coef) in by_var {
        if coef == 0 {
            continue;
        }
        let v = crate::types::Var(var);
        if coef > 0 {
            lits.push(v.positive());
            coefs.push(coef as u64);
        } else {
            bound -= coef; // coef < 0, so bound increases
            lits.push(v.negative());
            coefs.push((-coef) as u64);
        }
    }

    if bound <= 0 {
        return Normalized::TriviallyTrue;
    }
    let bound = bound as u64;
    // Clamp coefficients: any coefficient ≥ bound satisfies the constraint
    // alone, so larger values carry no extra information.
    for c in &mut coefs {
        if *c > bound {
            *c = bound;
        }
    }
    let total: u64 = coefs.iter().sum();
    if total < bound {
        return Normalized::TriviallyFalse;
    }
    // A literal whose absence makes the constraint unsatisfiable is forced.
    // When exactly one literal exists, that is a unit.
    if lits.len() == 1 {
        return Normalized::Unit(lits[0]);
    }
    Normalized::Constraint { lits, coefs, bound }
}

/// Reduces an arbitrary PB constraint to one or two `≥` inequalities.
///
/// `≤` is flipped by negating coefficients and bound; `=` becomes the
/// conjunction of `≥` and `≤`.
pub fn to_ge_constraints(terms: &[PbTerm], op: PbOp, bound: i64) -> Vec<(Vec<PbTerm>, i64)> {
    match op {
        PbOp::Ge => vec![(terms.to_vec(), bound)],
        PbOp::Le => {
            let flipped: Vec<PbTerm> = terms.iter().map(|t| PbTerm::new(t.lit, -t.coef)).collect();
            vec![(flipped, -bound)]
        }
        PbOp::Eq => {
            let mut out = to_ge_constraints(terms, PbOp::Ge, bound);
            out.extend(to_ge_constraints(terms, PbOp::Le, bound));
            out
        }
    }
}

/// A canonical PB constraint as stored inside the solver, with the running
/// counter state used for propagation.
pub(crate) struct PbConstraint {
    pub lits: Box<[Lit]>,
    pub coefs: Box<[u64]>,
    pub bound: u64,
    /// `Σ_{lᵢ not false} aᵢ − bound`. Negative ⇒ violated under the current
    /// partial assignment; less than some unassigned `aᵢ` ⇒ that literal is
    /// forced true.
    pub slack: i64,
    /// Largest coefficient, used to skip propagation scans when
    /// `slack ≥ max_coef`.
    pub max_coef: u64,
}

impl PbConstraint {
    pub(crate) fn new(lits: Vec<Lit>, coefs: Vec<u64>, bound: u64) -> PbConstraint {
        debug_assert_eq!(lits.len(), coefs.len());
        let total: i64 = coefs.iter().map(|&c| c as i64).sum();
        let max_coef = coefs.iter().copied().max().unwrap_or(0);
        PbConstraint {
            lits: lits.into_boxed_slice(),
            coefs: coefs.into_boxed_slice(),
            bound,
            slack: total - bound as i64,
            max_coef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn pos(i: usize) -> Lit {
        Var::from_index(i).positive()
    }
    fn neg(i: usize) -> Lit {
        Var::from_index(i).negative()
    }

    #[test]
    fn normalize_simple_clause() {
        // x0 + x1 + x2 >= 1 stays as-is.
        let n = normalize_ge(
            &[
                PbTerm::new(pos(0), 1),
                PbTerm::new(pos(1), 1),
                PbTerm::new(pos(2), 1),
            ],
            1,
        );
        match n {
            Normalized::Constraint { lits, coefs, bound } => {
                assert_eq!(lits, vec![pos(0), pos(1), pos(2)]);
                assert_eq!(coefs, vec![1, 1, 1]);
                assert_eq!(bound, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalize_negative_coefficient() {
        // 2·x0 − 3·x1 ≥ −1  ≡  2·x0 + 3·¬x1 ≥ 2
        let n = normalize_ge(&[PbTerm::new(pos(0), 2), PbTerm::new(pos(1), -3)], -1);
        match n {
            Normalized::Constraint { lits, coefs, bound } => {
                assert_eq!(lits, vec![pos(0), neg(1)]);
                assert_eq!(coefs, vec![2, 2]); // 3 clamped to bound 2
                assert_eq!(bound, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalize_negated_literal() {
        // 2·¬x0 ≥ 1 with another literal: ¬x0 kept as-is.
        let n = normalize_ge(&[PbTerm::new(neg(0), 2), PbTerm::new(pos(1), 1)], 2);
        match n {
            Normalized::Constraint { lits, coefs, bound } => {
                assert_eq!(lits, vec![neg(0), pos(1)]);
                assert_eq!(coefs, vec![2, 1]);
                assert_eq!(bound, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn complementary_literals_cancel() {
        // x0 + ¬x0 ≥ 1 is trivially true (sum is always exactly 1).
        let n = normalize_ge(&[PbTerm::new(pos(0), 1), PbTerm::new(neg(0), 1)], 1);
        assert_eq!(n, Normalized::TriviallyTrue);
    }

    #[test]
    fn duplicate_literals_merge() {
        // x0 + x0 ≥ 2 ≡ 2·x0 ≥ 2 ⇒ unit x0.
        let n = normalize_ge(&[PbTerm::new(pos(0), 1), PbTerm::new(pos(0), 1)], 2);
        assert_eq!(n, Normalized::Unit(pos(0)));
    }

    #[test]
    fn trivially_false_detected() {
        let n = normalize_ge(&[PbTerm::new(pos(0), 1), PbTerm::new(pos(1), 1)], 3);
        assert_eq!(n, Normalized::TriviallyFalse);
    }

    #[test]
    fn trivially_true_detected() {
        let n = normalize_ge(&[PbTerm::new(pos(0), 1)], 0);
        assert_eq!(n, Normalized::TriviallyTrue);
    }

    #[test]
    fn le_flips_to_ge() {
        // x0 + x1 ≤ 1  ≡  −x0 − x1 ≥ −1  ≡  ¬x0 + ¬x1 ≥ 1
        let ge = to_ge_constraints(
            &[PbTerm::new(pos(0), 1), PbTerm::new(pos(1), 1)],
            PbOp::Le,
            1,
        );
        assert_eq!(ge.len(), 1);
        match normalize_ge(&ge[0].0, ge[0].1) {
            Normalized::Constraint { lits, coefs, bound } => {
                assert_eq!(lits, vec![neg(0), neg(1)]);
                assert_eq!(coefs, vec![1, 1]);
                assert_eq!(bound, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eq_produces_two_constraints() {
        let ge = to_ge_constraints(
            &[PbTerm::new(pos(0), 1), PbTerm::new(pos(1), 1)],
            PbOp::Eq,
            1,
        );
        assert_eq!(ge.len(), 2);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let n = normalize_ge(&[PbTerm::new(pos(0), 0), PbTerm::new(pos(1), 1)], 1);
        assert_eq!(n, Normalized::Unit(pos(1)));
    }

    #[test]
    fn constraint_state_initial_slack() {
        let c = PbConstraint::new(vec![pos(0), pos(1), pos(2)], vec![3, 2, 1], 4);
        assert_eq!(c.slack, 2);
        assert_eq!(c.max_coef, 3);
    }
}
