//! Standalone SAT/PB solver CLI.
//!
//! ```text
//! optalloc-sat <file.cnf|file.opb> [--max-conflicts N]
//! ```
//!
//! Reads DIMACS CNF (by `.cnf` extension or a `p cnf` header) or OPB and
//! prints a SAT-competition-style result:
//!
//! ```text
//! s SATISFIABLE
//! v 1 -2 3 0
//! ```
//!
//! For OPB files with a `min:` objective, the optimum is found by
//! iterative strengthening (`obj ≤ best − 1` re-solves) and reported as
//! `o <value>` lines followed by the final `s OPTIMUM FOUND`.

use optalloc_sat::{Formula, PbOp, PbTerm, SolveResult, Var};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: optalloc-sat <file.cnf|file.opb> [--max-conflicts N]");
        return ExitCode::from(2);
    };
    let mut max_conflicts = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-conflicts" => {
                max_conflicts = args.next().and_then(|s| s.parse().ok());
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::from(2);
            }
        }
    }

    let input = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let is_cnf =
        path.ends_with(".cnf") || input.lines().any(|l| l.trim_start().starts_with("p cnf"));
    let formula = match if is_cnf {
        Formula::parse_dimacs(&input)
    } else {
        Formula::parse_opb(&input)
    } {
        Ok(f) => f,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };

    let (mut solver, vars) = formula.into_solver();
    solver.config.max_conflicts = max_conflicts;

    let verdict = solver.solve(&[]);
    if verdict == SolveResult::Sat {
        if let Some(obj) = formula.minimize.clone() {
            // Iterative strengthening: forbid the current objective value.
            loop {
                let value = formula
                    .objective_value(|l| {
                        let v = vars[l.unsigned_abs() as usize - 1];
                        solver.model_value(v.lit(l > 0))
                    })
                    .unwrap();
                println!("o {value}");
                let terms: Vec<PbTerm> = obj
                    .iter()
                    .map(|&(c, l)| {
                        let v = vars[l.unsigned_abs() as usize - 1];
                        PbTerm::new(v.lit(l > 0), c)
                    })
                    .collect();
                if !solver.add_pb(&terms, PbOp::Le, value - 1) {
                    break; // strengthening is contradictory ⇒ optimum found
                }
                match solver.solve(&[]) {
                    SolveResult::Sat => continue,
                    SolveResult::Unsat => break,
                    SolveResult::Unknown | SolveResult::Interrupted => {
                        println!("s UNKNOWN");
                        return ExitCode::from(0);
                    }
                }
            }
            println!("s OPTIMUM FOUND");
            print_model(&solver, &vars);
            return ExitCode::from(10);
        }
    }

    match verdict {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            print_model(&solver, &vars);
            ExitCode::from(10)
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        SolveResult::Unknown | SolveResult::Interrupted => {
            println!("s UNKNOWN");
            ExitCode::SUCCESS
        }
    }
}

fn print_model(solver: &optalloc_sat::Solver, vars: &[Var]) {
    print!("v");
    for (i, v) in vars.iter().enumerate() {
        let val = solver.model_value(v.positive());
        print!(
            " {}",
            if val {
                (i + 1) as i64
            } else {
                -((i + 1) as i64)
            }
        );
    }
    println!(" 0");
}
