//! **Figure 1** — path closures on the example hierarchical topology.
//!
//! Prints the closure set `PH` exactly as the figure lists it:
//!
//! ```text
//! ph0 = { "" }
//! ph1 = { "k1", "k1k2" }
//! ph2 = { "k1", "k1k3" }
//! ph3 = { "k2", "k2k1", "k2k1k3" }
//! ph4 = { "k3", "k3k1", "k3k1k2" }
//! ```

use optalloc_model::path_closures;
use optalloc_workloads::figure1;

fn main() {
    let arch = figure1();
    println!("Figure 1 topology:");
    for (_k, m) in arch.iter_media() {
        let members: Vec<String> = m.members.iter().map(|p| format!("p{}", p.0)).collect();
        println!("  {} = {{{}}}", m.name, members.join(", "));
    }
    println!("\nPath closures PH:");
    for (i, ph) in path_closures(&arch).iter().enumerate() {
        let paths: Vec<String> = ph
            .prefixes
            .iter()
            .map(|p| {
                let s: String = p
                    .iter()
                    .map(|k| arch.medium(*k).name.clone())
                    .collect::<Vec<_>>()
                    .join("");
                format!("\"{s}\"")
            })
            .collect();
        println!("  ph{} = {{ {} }}", i, paths.join(", "));
    }
}
