//! The task model `τᵢ = (tᵢ, cᵢ, γᵢ, πᵢ, δᵢ, dᵢ)` of paper §2, plus the
//! extensions of Tindell et al. \[5\] that the evaluation uses: memory
//! consumption and release jitter.

use crate::ids::{EcuId, MsgId, TaskId};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A message a task sends at the end of each activation (an element of γᵢ):
/// target task, payload size and end-to-end deadline Δ.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Receiving task.
    pub to: TaskId,
    /// Payload size in bytes.
    pub size: u32,
    /// End-to-end deadline Δ in ticks (budget over all media crossed plus
    /// gateway service).
    pub deadline: Time,
}

/// One task of the application.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name.
    pub name: String,
    /// Activation period / minimal inter-arrival time tᵢ, in ticks.
    pub period: Time,
    /// Worst-case execution time per ECU (the paper's `cᵢ : P → N`). Keys
    /// double as the placement permission set πᵢ: the task may only run on
    /// ECUs present here.
    pub wcet: BTreeMap<EcuId, Time>,
    /// Relative deadline dᵢ in ticks.
    pub deadline: Time,
    /// Messages sent at the end of each activation (γᵢ).
    pub messages: Vec<Message>,
    /// Tasks that must not share an ECU with this one (δᵢ — redundant
    /// replicas in fault-tolerant configurations).
    pub separation: BTreeSet<TaskId>,
    /// Memory footprint in bytes (Tindell-style extension; 0 if irrelevant).
    pub memory: u64,
    /// Release jitter Jᵢ in ticks.
    pub release_jitter: Time,
}

impl Task {
    /// Creates a task with the given name, period, deadline and WCET table;
    /// remaining fields start empty and can be set fluently.
    pub fn new(
        name: impl Into<String>,
        period: Time,
        deadline: Time,
        wcet: impl IntoIterator<Item = (EcuId, Time)>,
    ) -> Task {
        Task {
            name: name.into(),
            period,
            deadline,
            wcet: wcet.into_iter().collect(),
            messages: Vec::new(),
            separation: BTreeSet::new(),
            memory: 0,
            release_jitter: 0,
        }
    }

    /// Adds a message to γᵢ (builder style).
    pub fn sends(mut self, to: TaskId, size: u32, deadline: Time) -> Task {
        self.messages.push(Message { to, size, deadline });
        self
    }

    /// Declares a separation (anti-affinity) partner (builder style).
    pub fn separated_from(mut self, other: TaskId) -> Task {
        self.separation.insert(other);
        self
    }

    /// Sets the memory footprint (builder style).
    pub fn with_memory(mut self, bytes: u64) -> Task {
        self.memory = bytes;
        self
    }

    /// Sets the release jitter (builder style).
    pub fn with_jitter(mut self, jitter: Time) -> Task {
        self.release_jitter = jitter;
        self
    }

    /// The placement permission set πᵢ.
    pub fn allowed_ecus(&self) -> impl Iterator<Item = EcuId> + '_ {
        self.wcet.keys().copied()
    }

    /// `true` if the task may be placed on `ecu`.
    pub fn may_run_on(&self, ecu: EcuId) -> bool {
        self.wcet.contains_key(&ecu)
    }

    /// WCET on `ecu`, if placement there is allowed.
    pub fn wcet_on(&self, ecu: EcuId) -> Option<Time> {
        self.wcet.get(&ecu).copied()
    }

    /// Maximum utilization this task can impose (worst WCET over period).
    pub fn max_utilization(&self) -> f64 {
        let worst = self.wcet.values().copied().max().unwrap_or(0);
        worst as f64 / self.period as f64
    }
}

/// The application: a set of tasks with dense [`TaskId`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    /// All tasks; `TaskId(i)` indexes this vector.
    pub tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> TaskSet {
        TaskSet::default()
    }

    /// Adds a task, returning its id.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no tasks exist.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task behind an id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates `(id, task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Iterates all message ids with their descriptors.
    pub fn messages(&self) -> impl Iterator<Item = (MsgId, &Message)> {
        self.iter().flat_map(|(tid, t)| {
            t.messages.iter().enumerate().map(move |(i, m)| {
                (
                    MsgId {
                        sender: tid,
                        index: i as u32,
                    },
                    m,
                )
            })
        })
    }

    /// The message behind a [`MsgId`].
    pub fn message(&self, id: MsgId) -> &Message {
        &self.task(id.sender).messages[id.index as usize]
    }

    /// Checks internal consistency: message targets exist, separation
    /// partners exist and no task separates from itself, every task can run
    /// somewhere, periods/deadlines are positive.
    pub fn validate(&self) -> Result<(), String> {
        for (id, t) in self.iter() {
            if t.period == 0 {
                return Err(format!("{id} ({}) has period 0", t.name));
            }
            if t.deadline == 0 {
                return Err(format!("{id} ({}) has deadline 0", t.name));
            }
            if t.wcet.is_empty() {
                return Err(format!("{id} ({}) has no allowed ECU", t.name));
            }
            if t.wcet.values().any(|&c| c == 0) {
                return Err(format!("{id} ({}) has a zero WCET entry", t.name));
            }
            for m in &t.messages {
                if m.to.index() >= self.len() {
                    return Err(format!("{id} sends to unknown task {}", m.to));
                }
                if m.to == id {
                    return Err(format!("{id} sends a message to itself"));
                }
            }
            for &s in &t.separation {
                if s.index() >= self.len() {
                    return Err(format!("{id} separated from unknown task {s}"));
                }
                if s == id {
                    return Err(format!("{id} separated from itself"));
                }
            }
        }
        Ok(())
    }

    /// Total worst-case utilization (sum over tasks of worst WCET/period).
    pub fn max_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::max_utilization).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wcet(pairs: &[(u32, Time)]) -> Vec<(EcuId, Time)> {
        pairs.iter().map(|&(p, c)| (EcuId(p), c)).collect()
    }

    #[test]
    fn builder_style_construction() {
        let t = Task::new("ctrl", 100, 80, wcet(&[(0, 10), (1, 12)]))
            .sends(TaskId(1), 8, 40)
            .separated_from(TaskId(2))
            .with_memory(1024)
            .with_jitter(2);
        assert_eq!(t.period, 100);
        assert_eq!(t.messages.len(), 1);
        assert!(t.separation.contains(&TaskId(2)));
        assert_eq!(t.memory, 1024);
        assert_eq!(t.release_jitter, 2);
        assert!(t.may_run_on(EcuId(0)));
        assert!(!t.may_run_on(EcuId(5)));
        assert_eq!(t.wcet_on(EcuId(1)), Some(12));
    }

    #[test]
    fn utilization_uses_worst_wcet() {
        let t = Task::new("a", 100, 100, wcet(&[(0, 10), (1, 25)]));
        assert!((t.max_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn taskset_message_iteration() {
        let mut ts = TaskSet::new();
        let a = ts.push(Task::new("a", 10, 10, wcet(&[(0, 1)])));
        let b = ts.push(
            Task::new("b", 20, 20, wcet(&[(0, 2)]))
                .sends(a, 4, 10)
                .sends(a, 2, 15),
        );
        let ids: Vec<MsgId> = ts.messages().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].sender, b);
        assert_eq!(ids[0].index, 0);
        assert_eq!(ts.message(ids[1]).size, 2);
    }

    #[test]
    fn validate_catches_bad_targets() {
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 10, 10, wcet(&[(0, 1)])).sends(TaskId(9), 1, 5));
        assert!(ts.validate().unwrap_err().contains("unknown task"));
    }

    #[test]
    fn validate_catches_self_message_and_self_separation() {
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 10, 10, wcet(&[(0, 1)])).sends(TaskId(0), 1, 5));
        assert!(ts.validate().unwrap_err().contains("itself"));

        let mut ts2 = TaskSet::new();
        ts2.push(Task::new("a", 10, 10, wcet(&[(0, 1)])).separated_from(TaskId(0)));
        assert!(ts2.validate().unwrap_err().contains("itself"));
    }

    #[test]
    fn validate_catches_degenerate_timing() {
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 0, 10, wcet(&[(0, 1)])));
        assert!(ts.validate().unwrap_err().contains("period 0"));
    }

    #[test]
    fn validate_accepts_well_formed_set() {
        let mut ts = TaskSet::new();
        let a = ts.push(Task::new("a", 10, 10, wcet(&[(0, 1)])));
        ts.push(Task::new("b", 20, 18, wcet(&[(0, 2), (1, 3)])).sends(a, 4, 9));
        assert!(ts.validate().is_ok());
    }
}
