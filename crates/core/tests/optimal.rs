//! Cross-validation of the SAT optimizer against brute-force enumeration on
//! small instances: the returned cost must equal the best objective value
//! over all feasible allocations, and the returned allocation must pass the
//! independent analysis.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_analysis::{bus_load_permille, ecu_utilization_permille, validate, AnalysisConfig};
use optalloc_intopt::{Backend, BinSearchMode};
use optalloc_model::{
    Allocation, Architecture, Ecu, EcuId, Medium, MessageRoute, MsgId, Task, TaskId, TaskSet,
};

/// Enumerates every placement over the tasks' allowed ECUs, with routes
/// derived canonically: co-located → empty route, otherwise the single
/// shared medium with the full deadline budget. Only valid for single-bus
/// architectures.
fn enumerate_allocations(arch: &Architecture, tasks: &TaskSet) -> Vec<Allocation> {
    let allowed: Vec<Vec<EcuId>> = tasks
        .iter()
        .map(|(_, t)| {
            t.allowed_ecus()
                .filter(|&p| arch.ecu(p).hosts_tasks)
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    let mut choice = vec![0usize; tasks.len()];
    loop {
        let mut alloc = Allocation::skeleton(tasks);
        alloc.placement = choice
            .iter()
            .zip(&allowed)
            .map(|(&c, opts)| opts[c])
            .collect();
        for (mid, m) in tasks.messages() {
            let s = alloc.ecu_of(mid.sender);
            let r = alloc.ecu_of(m.to);
            let route = if s == r {
                MessageRoute::colocated()
            } else if let Some(k) = arch.shared_medium(s, r) {
                MessageRoute::single_hop(k, m.deadline)
            } else {
                MessageRoute::colocated() // invalid; analysis rejects it
            };
            *alloc.route_mut(mid) = route;
        }
        out.push(alloc);
        // Odometer.
        let mut i = 0;
        loop {
            if i == choice.len() {
                return out;
            }
            choice[i] += 1;
            if choice[i] < allowed[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn brute_force_min(
    arch: &Architecture,
    tasks: &TaskSet,
    cost: impl Fn(&Allocation) -> i64,
) -> Option<i64> {
    let config = AnalysisConfig::default();
    enumerate_allocations(arch, tasks)
        .into_iter()
        .filter(|a| validate(arch, tasks, a, &config).is_feasible())
        .map(|a| cost(&a))
        .min()
}

/// Two ECUs on a CAN bus, three tasks, one message.
fn can_system() -> (Architecture, TaskSet) {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("a", 40, 30, vec![(p0, 10), (p1, 12)]).sends(TaskId(2), 4, 20));
    tasks.push(Task::new("b", 40, 35, vec![(p0, 14), (p1, 10)]));
    tasks.push(Task::new("c", 40, 40, vec![(p0, 9), (p1, 9)]));
    (arch, tasks)
}

#[test]
fn bus_load_optimum_matches_brute_force() {
    let (arch, tasks) = can_system();
    let can = optalloc_model::MediumId(0);
    let expected = brute_force_min(&arch, &tasks, |a| {
        bus_load_permille(&arch, &tasks, a, can) as i64
    })
    .expect("feasible by construction");
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::BusLoadPermille(can))
        .unwrap();
    assert_eq!(result.cost, expected);
    assert!(result.solution.report.is_feasible());
}

#[test]
fn max_utilization_optimum_matches_brute_force() {
    let (arch, tasks) = can_system();
    let expected = brute_force_min(&arch, &tasks, |a| {
        *ecu_utilization_permille(&tasks, a, 2).iter().max().unwrap() as i64
    })
    .expect("feasible");
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::MaxUtilizationPermille)
        .unwrap();
    assert_eq!(result.cost, expected);
}

#[test]
fn all_modes_and_backends_agree() {
    let (arch, tasks) = can_system();
    let can = optalloc_model::MediumId(0);
    let mut costs = Vec::new();
    for backend in [Backend::Cnf, Backend::PseudoBoolean] {
        for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
            for product_elimination in [false, true] {
                let opts = SolveOptions {
                    backend,
                    mode,
                    product_elimination,
                    ..Default::default()
                };
                let result = Optimizer::new(&arch, &tasks)
                    .with_options(opts)
                    .minimize(&Objective::BusLoadPermille(can))
                    .unwrap();
                costs.push(result.cost);
            }
        }
    }
    assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
}

#[test]
fn separation_forces_split_placement() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("primary", 50, 50, vec![(p0, 5), (p1, 5)]).separated_from(TaskId(1)));
    tasks.push(Task::new("replica", 50, 45, vec![(p0, 5), (p1, 5)]).separated_from(TaskId(0)));

    let sol = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    assert_ne!(
        sol.allocation.ecu_of(TaskId(0)),
        sol.allocation.ecu_of(TaskId(1))
    );
}

#[test]
fn memory_capacity_forces_placement() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0").with_memory(100));
    let p1 = arch.push_ecu(Ecu::new("p1").with_memory(1000));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("big", 50, 50, vec![(p0, 5), (p1, 5)]).with_memory(500));
    tasks.push(Task::new("big2", 50, 45, vec![(p0, 5), (p1, 5)]).with_memory(600));

    // Both tasks need p1's memory... together 1100 > 1000, so one must go
    // to p0 — but each needs > 100. Infeasible.
    match Optimizer::new(&arch, &tasks).find_feasible() {
        Err(optalloc::OptError::Infeasible) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }

    // Shrink one task below p0's capacity: now feasible, and whatever
    // placement comes back must respect both capacities.
    tasks.tasks[0].memory = 80;
    let sol = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    for (pid, cap) in [(p0, 100u64), (p1, 1000)] {
        let used: u64 = tasks
            .iter()
            .filter(|&(tid, _)| sol.allocation.ecu_of(tid) == pid)
            .map(|(_, t)| t.memory)
            .sum();
        assert!(used <= cap, "{pid}: {used} > {cap}");
    }
}

#[test]
fn infeasible_deadline_detected() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));

    let mut tasks = TaskSet::new();
    // Three tasks of 60% each: no split over two ECUs works.
    tasks.push(Task::new("a", 10, 10, vec![(p0, 6), (p1, 6)]));
    tasks.push(Task::new("b", 10, 9, vec![(p0, 6), (p1, 6)]));
    tasks.push(Task::new("c", 10, 8, vec![(p0, 6), (p1, 6)]));

    match Optimizer::new(&arch, &tasks).find_feasible() {
        Err(optalloc::OptError::Infeasible) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn trt_minimization_on_token_ring() {
    // Two ECUs on a token ring; one message must cross (placement forced
    // apart by permissions). The minimal TRT is bounded below by slot-fit
    // and message/task deadlines.
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    let ring = arch.push_medium(Medium::tdma("ring", vec![p0, p1], vec![8, 8], 1, 1));

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("src", 60, 60, vec![(p0, 5)]).sends(TaskId(1), 4, 40));
    tasks.push(Task::new("dst", 60, 50, vec![(p1, 5)]));

    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::TokenRotationTime(ring))
        .unwrap();
    // ρ = 1 + 4 = 5; sender slot must fit ρ (≥5), other slot ≥ 1 ⇒ TRT ≥ 6.
    // Check this is indeed attainable: r = 5 + ceil(r/6)·(6−5) → r = 6 ≤ 40. ✓
    assert_eq!(result.cost, 6);
    let slots = &result.solution.allocation.slot_overrides[&ring];
    assert_eq!(slots.iter().sum::<u64>(), 6);
    assert!(result.solution.report.is_feasible());
}

#[test]
fn trt_optimum_matches_brute_force_slot_enumeration() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    let ring = arch.push_medium(Medium::tdma("ring", vec![p0, p1], vec![8, 8], 1, 1));

    let mut tasks = TaskSet::new();
    // Cross traffic in both directions.
    tasks.push(Task::new("a", 50, 50, vec![(p0, 5)]).sends(TaskId(1), 3, 25));
    tasks.push(Task::new("b", 50, 45, vec![(p1, 5)]).sends(TaskId(0), 5, 30));

    // Brute force over slot tables.
    let config = AnalysisConfig::default();
    let mut best = None;
    for s0 in 1..=16u64 {
        for s1 in 1..=16u64 {
            let mut alloc = Allocation::skeleton(&tasks);
            alloc.placement = vec![p0, p1];
            *alloc.route_mut(MsgId {
                sender: TaskId(0),
                index: 0,
            }) = MessageRoute::single_hop(ring, 25);
            *alloc.route_mut(MsgId {
                sender: TaskId(1),
                index: 0,
            }) = MessageRoute::single_hop(ring, 30);
            alloc.slot_overrides.insert(ring, vec![s0, s1]);
            if validate(&arch, &tasks, &alloc, &config).is_feasible() {
                let trt = (s0 + s1) as i64;
                best = Some(best.map_or(trt, |b: i64| b.min(trt)));
            }
        }
    }
    let expected = best.expect("some slot table must work");

    let result = Optimizer::new(&arch, &tasks)
        .with_options(SolveOptions {
            max_slot: 16,
            ..Default::default()
        })
        .minimize(&Objective::TokenRotationTime(ring))
        .unwrap();
    assert_eq!(result.cost, expected);
}

#[test]
fn utilization_spread_optimum_matches_brute_force() {
    let (arch, tasks) = can_system();
    let expected = brute_force_min(&arch, &tasks, |a| {
        optalloc_analysis::utilization_minmax_spread_permille(&tasks, a, 2) as i64
    })
    .expect("feasible");
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::UtilizationSpreadPermille)
        .unwrap();
    assert_eq!(result.cost, expected);
    assert_eq!(
        optalloc_analysis::utilization_minmax_spread_permille(
            &tasks,
            &result.solution.allocation,
            2
        ) as i64,
        result.cost,
        "cost must equal the spread of the returned allocation"
    );
}

#[test]
fn warm_start_hint_preserves_optimum() {
    let (arch, tasks) = can_system();
    let can = optalloc_model::MediumId(0);
    let baseline = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::BusLoadPermille(can))
        .unwrap();
    // Exact, loose, and invalid (too low) hints must not change the result.
    for hint in [baseline.cost, baseline.cost + 50, 0.max(baseline.cost - 10)] {
        let warm = Optimizer::new(&arch, &tasks)
            .with_options(SolveOptions {
                initial_upper: Some(hint),
                ..Default::default()
            })
            .minimize(&Objective::BusLoadPermille(can))
            .unwrap();
        assert_eq!(warm.cost, baseline.cost, "hint {hint}");
    }
}

#[test]
fn encode_stats_are_reported() {
    let (arch, tasks) = can_system();
    let can = optalloc_model::MediumId(0);
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::BusLoadPermille(can))
        .unwrap();
    assert!(result.encode.bool_vars > 0);
    assert!(result.encode.literals > 0);
    assert!(result.solve_calls >= 1);
}
