//! Cross-validation sweeps: solver modes and backends must agree on the
//! optimum across random instances, and every emitted allocation must pass
//! the independent analysis — the workspace-level soundness net.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_intopt::{Backend, BinSearchMode};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn tiny(seed: u64, token_ring: bool) -> GenParams {
    GenParams {
        name: format!("xval-{seed}"),
        n_tasks: 7,
        n_chains: 2,
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.3,
        redundant_pairs: 1,
        token_ring,
        deadline_slack: 1.5,
    }
}

#[test]
fn all_solver_configurations_agree_on_trt_optimum() {
    let ring = MediumId(0);
    for seed in [41u64, 42, 43] {
        let w = generate(&tiny(seed, true));
        let mut costs = Vec::new();
        for backend in [Backend::Cnf, Backend::PseudoBoolean] {
            for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
                let result = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(SolveOptions {
                        backend,
                        mode,
                        max_slot: 16,
                        ..Default::default()
                    })
                    .minimize(&Objective::TokenRotationTime(ring))
                    .unwrap_or_else(|e| panic!("seed {seed} {backend:?} {mode:?}: {e}"));
                assert!(result.solution.report.is_feasible());
                costs.push(result.cost);
            }
        }
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: configurations disagree: {costs:?}"
        );
    }
}

#[test]
fn product_elimination_is_semantics_preserving() {
    let ring = MediumId(0);
    for seed in [51u64, 52] {
        let w = generate(&tiny(seed, true));
        let mut costs = Vec::new();
        for product_elimination in [false, true] {
            let result = Optimizer::new(&w.arch, &w.tasks)
                .with_options(SolveOptions {
                    product_elimination,
                    max_slot: 16,
                    ..Default::default()
                })
                .minimize(&Objective::TokenRotationTime(ring))
                .unwrap();
            costs.push(result.cost);
        }
        assert_eq!(costs[0], costs[1], "seed {seed}");
    }
}

#[test]
fn feasibility_search_matches_minimization_feasibility() {
    // If minimize() succeeds, find_feasible() must too, and vice versa.
    for seed in [61u64, 62, 63] {
        let w = generate(&tiny(seed, false));
        let opt = Optimizer::new(&w.arch, &w.tasks);
        let feasible = opt.find_feasible().is_ok();
        let minimized = opt.minimize(&Objective::MaxUtilizationPermille).is_ok();
        assert_eq!(feasible, minimized, "seed {seed}");
        assert!(feasible, "planted instances are feasible (seed {seed})");
    }
}

#[test]
fn gateway_service_config_is_consistent() {
    // The optimizer's analysis_config must reproduce the encoder's gateway
    // service setting.
    let w = generate(&tiny(71, true));
    let opts = SolveOptions {
        gateway_service: 5,
        ..Default::default()
    };
    let opt = Optimizer::new(&w.arch, &w.tasks).with_options(opts);
    assert_eq!(opt.analysis_config().gateway_service, 5);
}
