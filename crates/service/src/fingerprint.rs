//! Canonical instance fingerprinting.
//!
//! The fingerprint is a 128-bit FNV-1a content hash over the **canonical
//! form** of an instance — ECUs, media and tasks stably sorted by name with
//! every id reference rewritten through the sort permutations — plus the
//! (canonicalized) objective and the semantic solve options. Two
//! submissions that differ only in task/ECU/medium declaration order
//! therefore hash identically and share one cache/session slot.
//!
//! Order that **is** semantic survives canonicalization untouched: a
//! medium's member list stays in declaration order (TDMA slot `i` belongs
//! to member `i`), and a task's message list stays in send order (message
//! routes are indexed by position).
//!
//! Soundness does not rest on the hash: a cache hit additionally compares
//! canonical forms for equality before an answer is served, so a 128-bit
//! collision costs nothing but the comparison.

use crate::protocol::Instance;
use optalloc::{Objective, SolveOptions};
use optalloc_model::{Allocation, Architecture, EcuId, MediumId, TaskId, TaskSet};

/// A 128-bit canonical content hash (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

impl std::str::FromStr for Fingerprint {
    type Err = String;
    fn from_str(s: &str) -> Result<Fingerprint, String> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("\"{s}\" is not a 32-hex-digit fingerprint"));
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|e| e.to_string())?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|e| e.to_string())?;
        Ok(Fingerprint { hi, lo })
    }
}

/// 128-bit FNV-1a over a byte stream.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;

    fn new() -> Fnv128 {
        Fnv128(Fnv128::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Fnv128::PRIME);
        }
    }

    fn finish(&self) -> Fingerprint {
        Fingerprint {
            hi: (self.0 >> 64) as u64,
            lo: self.0 as u64,
        }
    }
}

/// A stable-by-name sort permutation: `order[new] = old` and
/// `rank[old] = new`.
struct Perm {
    rank: Vec<u32>,
}

impl Perm {
    fn by_name<T>(items: &[T], name: impl Fn(&T) -> &str) -> Perm {
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| name(&items[a]).cmp(name(&items[b])));
        let mut rank = vec![0u32; items.len()];
        for (new, &old) in order.iter().enumerate() {
            rank[old] = new as u32;
        }
        Perm { rank }
    }

    fn new_of(&self, old: u32) -> u32 {
        self.rank[old as usize]
    }
}

/// The canonical form of an instance plus the medium permutation needed to
/// canonicalize objectives that name a medium.
pub(crate) struct Canonical {
    /// The re-sorted, re-indexed instance.
    pub instance: Instance,
    medium_rank: Perm,
}

impl Canonical {
    /// The canonical image of an objective: medium references follow the
    /// medium permutation, everything else is order-free already.
    pub fn objective(&self, objective: &Objective) -> Objective {
        match objective {
            Objective::TokenRotationTime(m) => {
                Objective::TokenRotationTime(MediumId(self.medium_rank.new_of(m.0)))
            }
            Objective::BusLoadPermille(m) => {
                Objective::BusLoadPermille(MediumId(self.medium_rank.new_of(m.0)))
            }
            other => other.clone(),
        }
    }
}

/// Computes the canonical form: ECUs, media and tasks stably sorted by
/// name, all id references rewritten; member lists and message lists keep
/// their (semantic) internal order.
pub(crate) fn canonicalize(instance: &Instance) -> Canonical {
    let arch = &instance.arch;
    let tasks = &instance.tasks;
    let ecu_rank = Perm::by_name(&arch.ecus, |e| &e.name);
    let medium_rank = Perm::by_name(&arch.media, |m| &m.name);
    let task_rank = Perm::by_name(&tasks.tasks, |t| &t.name);

    let mut ecus = arch.ecus.clone();
    ecus.sort_by(|a, b| a.name.cmp(&b.name));
    let mut media = arch.media.clone();
    media.sort_by(|a, b| a.name.cmp(&b.name));
    for m in &mut media {
        // Member order is semantic (TDMA slot i ↔ member i): only the ids
        // are rewritten, never the order.
        for p in &mut m.members {
            *p = EcuId(ecu_rank.new_of(p.0));
        }
    }

    let mut sorted_tasks = tasks.tasks.clone();
    sorted_tasks.sort_by(|a, b| a.name.cmp(&b.name));
    for t in &mut sorted_tasks {
        t.wcet = t
            .wcet
            .iter()
            .map(|(&p, &c)| (EcuId(ecu_rank.new_of(p.0)), c))
            .collect();
        t.separation = t
            .separation
            .iter()
            .map(|&s| TaskId(task_rank.new_of(s.0)))
            .collect();
        for m in &mut t.messages {
            m.to = TaskId(task_rank.new_of(m.to.0));
        }
    }

    Canonical {
        instance: Instance {
            arch: Architecture { ecus, media },
            tasks: TaskSet {
                tasks: sorted_tasks,
            },
        },
        medium_rank,
    }
}

/// The canonical fingerprint of a job: instance content (order-free),
/// objective (canonicalized), the semantic solve options (those that can
/// change feasibility, the optimum, or what the result carries) and the
/// requested cost window. Backend/mode/strategy knobs are deliberately
/// excluded — they change how the optimum is found, never what it is.
pub fn fingerprint(
    instance: &Instance,
    objective: &Objective,
    opts: &SolveOptions,
    window: Option<(i64, i64)>,
) -> Fingerprint {
    let canon = canonicalize(instance);
    let mut h = Fnv128::new();
    h.write(
        serde_json::to_string(&canon.instance)
            .expect("model types always serialize")
            .as_bytes(),
    );
    h.write(
        serde_json::to_string(&canon.objective(objective))
            .expect("objective always serializes")
            .as_bytes(),
    );
    h.write(
        format!(
            "gw={};slot={};jitter={};certify={};window={window:?}",
            opts.gateway_service, opts.max_slot, opts.task_jitter, opts.certify
        )
        .as_bytes(),
    );
    h.finish()
}

/// Rewrites an allocation computed for `from` into the id space of `to`,
/// where both instances have equal canonical forms (same names, same
/// content, possibly different declaration order). Returns `None` when the
/// instances do not actually correspond — callers treat that as a cache
/// miss, never an error.
pub(crate) fn remap_allocation(
    alloc: &Allocation,
    from: &Instance,
    to: &Instance,
) -> Option<Allocation> {
    fn index_of<'a, T>(
        items: &'a [T],
        name: impl Fn(&T) -> &str + 'a,
    ) -> impl Fn(&str) -> Option<usize> + 'a {
        move |wanted| items.iter().position(|i| name(i) == wanted)
    }
    if from.tasks.len() != to.tasks.len()
        || from.arch.ecus.len() != to.arch.ecus.len()
        || from.arch.media.len() != to.arch.media.len()
    {
        return None;
    }
    let from_task = index_of(&from.tasks.tasks, |t| &t.name);
    let from_ecu_name = |id: EcuId| from.arch.ecus.get(id.index()).map(|e| e.name.as_str());
    let to_ecu = index_of(&to.arch.ecus, |e| &e.name);
    let from_medium_name = |id: MediumId| from.arch.media.get(id.index()).map(|m| m.name.as_str());
    let to_medium = index_of(&to.arch.media, |m| &m.name);

    let map_ecu = |id: EcuId| -> Option<EcuId> { Some(EcuId(to_ecu(from_ecu_name(id)?)? as u32)) };
    let map_medium = |id: MediumId| -> Option<MediumId> {
        Some(MediumId(to_medium(from_medium_name(id)?)? as u32))
    };

    let mut out = Allocation {
        placement: Vec::with_capacity(to.tasks.len()),
        priorities: Vec::with_capacity(to.tasks.len()),
        routes: Vec::with_capacity(to.tasks.len()),
        slot_overrides: Default::default(),
    };
    for (_, t) in to.tasks.iter() {
        let i_from = from_task(&t.name)?;
        out.placement.push(map_ecu(*alloc.placement.get(i_from)?)?);
        out.priorities.push(*alloc.priorities.get(i_from)?);
        let routes = alloc.routes.get(i_from)?;
        if routes.len() != t.messages.len() {
            return None;
        }
        let mut mapped = Vec::with_capacity(routes.len());
        for r in routes {
            let mut route = r.clone();
            for m in &mut route.media {
                *m = map_medium(*m)?;
            }
            mapped.push(route);
        }
        out.routes.push(mapped);
    }
    for (&m, slots) in &alloc.slot_overrides {
        out.slot_overrides.insert(map_medium(m)?, slots.clone());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium, Task};

    /// Two declaration orders of the same instance: ECUs and tasks are
    /// pushed in opposite orders, so every id differs but the content is
    /// identical.
    fn twin_instances() -> (Instance, Instance) {
        let mk = |flip: bool| {
            let mut arch = Architecture::new();
            let names: [&str; 2] = if flip { ["p1", "p0"] } else { ["p0", "p1"] };
            let e0 = arch.push_ecu(Ecu::new(names[0]));
            let e1 = arch.push_ecu(Ecu::new(names[1]));
            let (p0, p1) = if flip { (e1, e0) } else { (e0, e1) };
            arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
            let mut tasks = TaskSet::new();
            if flip {
                let b = tasks.push(Task::new("b", 50, 40, vec![(p0, 15), (p1, 15)]));
                tasks.push(Task::new("a", 50, 50, vec![(p0, 10), (p1, 10)]).sends(b, 4, 25));
            } else {
                tasks.push(Task::new("a", 50, 50, vec![(p0, 10), (p1, 10)]).sends(
                    TaskId(1),
                    4,
                    25,
                ));
                tasks.push(Task::new("b", 50, 40, vec![(p0, 15), (p1, 15)]));
            }
            Instance { arch, tasks }
        };
        (mk(false), mk(true))
    }

    #[test]
    fn reordered_instances_share_a_fingerprint() {
        let (a, b) = twin_instances();
        assert_ne!(a.tasks.tasks[0].name, b.tasks.tasks[0].name);
        let opts = SolveOptions::default();
        let fa = fingerprint(&a, &Objective::MaxUtilizationPermille, &opts, None);
        let fb = fingerprint(&b, &Objective::MaxUtilizationPermille, &opts, None);
        assert_eq!(fa, fb);
        // And the canonical forms are *equal*, not merely hash-equal.
        assert_eq!(canonicalize(&a).instance, canonicalize(&b).instance);
    }

    #[test]
    fn content_changes_change_the_fingerprint() {
        let (a, _) = twin_instances();
        let opts = SolveOptions::default();
        let base = fingerprint(&a, &Objective::MaxUtilizationPermille, &opts, None);
        let mut wcet = a.clone();
        wcet.tasks.tasks[0].wcet.insert(EcuId(0), 11);
        assert_ne!(
            fingerprint(&wcet, &Objective::MaxUtilizationPermille, &opts, None),
            base
        );
        // Objective, semantic options and window are all part of the key.
        assert_ne!(
            fingerprint(&a, &Objective::UtilizationSpreadPermille, &opts, None),
            base
        );
        let jitter = SolveOptions {
            task_jitter: true,
            ..SolveOptions::default()
        };
        assert_ne!(
            fingerprint(&a, &Objective::MaxUtilizationPermille, &jitter, None),
            base
        );
        assert_ne!(
            fingerprint(&a, &Objective::MaxUtilizationPermille, &opts, Some((0, 10))),
            base
        );
    }

    #[test]
    fn medium_objectives_canonicalize_through_the_medium_permutation() {
        // Same two-bus architecture, media declared in both orders; the
        // objective names "the bus called can-b" in each instance's own id
        // space and must fingerprint identically.
        let mk = |flip: bool| {
            let mut arch = Architecture::new();
            let p0 = arch.push_ecu(Ecu::new("p0"));
            let p1 = arch.push_ecu(Ecu::new("p1"));
            let names = if flip {
                ["can-b", "can-a"]
            } else {
                ["can-a", "can-b"]
            };
            let first = arch.push_medium(Medium::priority(names[0], vec![p0, p1], 1, 1));
            let second = arch.push_medium(Medium::priority(names[1], vec![p0, p1], 1, 1));
            let target = if names[0] == "can-b" { first } else { second };
            let mut tasks = TaskSet::new();
            tasks.push(Task::new("a", 50, 50, vec![(p0, 10), (p1, 10)]));
            (Instance { arch, tasks }, target)
        };
        let (ia, ma) = mk(false);
        let (ib, mb) = mk(true);
        assert_ne!(ma, mb, "the same bus has different ids in the two orders");
        let opts = SolveOptions::default();
        assert_eq!(
            fingerprint(&ia, &Objective::BusLoadPermille(ma), &opts, None),
            fingerprint(&ib, &Objective::BusLoadPermille(mb), &opts, None)
        );
    }

    #[test]
    fn search_engine_knobs_never_enter_the_fingerprint() {
        // The search engine changes how the optimum is found, never what it
        // is — like backend/mode/strategy it must stay out of the cache key,
        // or re-solving with a different engine would miss warm state.
        let (a, _) = twin_instances();
        let full = SolveOptions::default();
        let legacy = SolveOptions {
            search: optalloc::SearchEngine::legacy(),
            ..SolveOptions::default()
        };
        assert_eq!(
            fingerprint(&a, &Objective::MaxUtilizationPermille, &full, None),
            fingerprint(&a, &Objective::MaxUtilizationPermille, &legacy, None),
        );
    }

    #[test]
    fn fingerprints_round_trip_through_hex() {
        let (a, _) = twin_instances();
        let f = fingerprint(
            &a,
            &Objective::MaxUtilizationPermille,
            &SolveOptions::default(),
            None,
        );
        let s = f.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(s.parse::<Fingerprint>().unwrap(), f);
        assert!("nonsense".parse::<Fingerprint>().is_err());
    }

    #[test]
    fn remap_translates_an_allocation_between_declaration_orders() {
        let (a, b) = twin_instances();
        // An allocation for `a` (task order a,b / ecu order p0,p1): task a
        // on p0, task b on p1.
        let alloc = Allocation {
            placement: vec![EcuId(0), EcuId(1)],
            priorities: vec![0, 1],
            routes: vec![
                vec![optalloc_model::MessageRoute::single_hop(MediumId(0), 25)],
                vec![],
            ],
            slot_overrides: Default::default(),
        };
        let mapped = remap_allocation(&alloc, &a, &b).unwrap();
        // In `b`, task order is [b, a] and ECU order is [p1, p0], so task b
        // (on p1) maps to EcuId(0) and task a (on p0) to EcuId(1).
        assert_eq!(mapped.placement, vec![EcuId(0), EcuId(1)]);
        assert_eq!(mapped.priorities, vec![1, 0]);
        assert_eq!(mapped.routes[1].len(), 1, "a's message followed it");
        assert!(mapped.routes[0].is_empty());
    }

    #[test]
    fn remap_rejects_mismatched_instances() {
        let (a, _) = twin_instances();
        let mut other = a.clone();
        other.tasks.tasks[0].name = "renamed".into();
        let alloc = Allocation::skeleton(&a.tasks);
        assert!(remap_allocation(&alloc, &a, &other).is_none());
    }
}
