//! Expression ASTs for bounded-integer constraint problems.
//!
//! The allocation encoder (paper §3–§4) produces Boolean combinations of
//! integer (in)equations. This module provides the two expression types —
//! [`IntExpr`] over bounded integers and [`BoolExpr`] over truth values —
//! with cheap structural sharing (`Arc` nodes) so that, e.g., a response-time
//! variable appearing in dozens of constraints is one shared node. The nodes
//! are atomically counted so a built [`crate::IntProblem`] is `Send + Sync`
//! and portfolio workers can race over one shared encoding.
//!
//! Every integer variable carries its range `[lo, hi]`; ranges of compound
//! expressions are inferred by interval arithmetic during triplet rewriting.

use std::fmt;
use std::sync::Arc;

/// A bounded integer variable (declared through
/// [`IntProblem::int_var`](crate::IntProblem::int_var)).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct IntVar {
    pub(crate) id: u32,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl IntVar {
    /// The declaration index of this variable.
    pub fn id(self) -> u32 {
        self.id
    }

    /// This variable as an expression.
    pub fn expr(self) -> IntExpr {
        IntExpr(Arc::new(IntNode::Var(self)))
    }
}

impl fmt::Debug for IntVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}[{},{}]", self.id, self.lo, self.hi)
    }
}

/// A Boolean variable (declared through
/// [`IntProblem::bool_var`](crate::IntProblem::bool_var)).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BoolVar {
    pub(crate) id: u32,
}

impl BoolVar {
    /// The declaration index of this variable.
    pub fn id(self) -> u32 {
        self.id
    }

    /// This variable as a Boolean expression.
    pub fn expr(self) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Var(self)))
    }
}

#[derive(Debug)]
pub(crate) enum IntNode {
    Const(i64),
    Var(IntVar),
    Add(IntExpr, IntExpr),
    Sub(IntExpr, IntExpr),
    Mul(IntExpr, IntExpr),
}

/// An integer-valued expression: constants, variables, `+`, `-`, `*`.
///
/// Cloning is cheap (reference-counted nodes). Use the comparison methods
/// ([`IntExpr::ge`], [`IntExpr::eq`], …) to obtain [`BoolExpr`] atoms.
#[derive(Clone, Debug)]
pub struct IntExpr(pub(crate) Arc<IntNode>);

impl IntExpr {
    /// A constant expression.
    pub fn constant(v: i64) -> IntExpr {
        IntExpr(Arc::new(IntNode::Const(v)))
    }

    pub(crate) fn node(&self) -> &IntNode {
        &self.0
    }

    /// Sum of an iterator of expressions (0 when empty).
    pub fn sum<I: IntoIterator<Item = IntExpr>>(items: I) -> IntExpr {
        let mut it = items.into_iter();
        match it.next() {
            None => IntExpr::constant(0),
            Some(first) => it.fold(first, |acc, e| acc + e),
        }
    }

    /// `self ≥ rhs`
    pub fn ge(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Cmp(CmpOp::Le, rhs.into(), self.clone())))
    }

    /// `self > rhs`
    pub fn gt(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Cmp(CmpOp::Lt, rhs.into(), self.clone())))
    }

    /// `self ≤ rhs`
    pub fn le(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Cmp(CmpOp::Le, self.clone(), rhs.into())))
    }

    /// `self < rhs`
    pub fn lt(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Cmp(CmpOp::Lt, self.clone(), rhs.into())))
    }

    /// `self = rhs`
    pub fn eq(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Cmp(CmpOp::Eq, self.clone(), rhs.into())))
    }

    /// `self ≠ rhs`
    pub fn ne(&self, rhs: impl Into<IntExpr>) -> BoolExpr {
        self.eq(rhs).not()
    }

    /// Interval bounds of this expression by interval arithmetic.
    pub fn range(&self) -> (i64, i64) {
        match self.node() {
            IntNode::Const(v) => (*v, *v),
            IntNode::Var(v) => (v.lo, v.hi),
            IntNode::Add(a, b) => {
                let (al, ah) = a.range();
                let (bl, bh) = b.range();
                (al + bl, ah + bh)
            }
            IntNode::Sub(a, b) => {
                let (al, ah) = a.range();
                let (bl, bh) = b.range();
                (al - bh, ah - bl)
            }
            IntNode::Mul(a, b) => {
                let (al, ah) = a.range();
                let (bl, bh) = b.range();
                let products = [al * bl, al * bh, ah * bl, ah * bh];
                (
                    products.iter().copied().min().unwrap(),
                    products.iter().copied().max().unwrap(),
                )
            }
        }
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> IntExpr {
        IntExpr::constant(v)
    }
}

impl From<IntVar> for IntExpr {
    fn from(v: IntVar) -> IntExpr {
        v.expr()
    }
}

impl From<&IntExpr> for IntExpr {
    fn from(e: &IntExpr) -> IntExpr {
        e.clone()
    }
}

macro_rules! int_binop {
    ($trait:ident, $method:ident, $node:ident) => {
        impl std::ops::$trait<IntExpr> for IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: IntExpr) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(self, rhs)))
            }
        }
        impl std::ops::$trait<&IntExpr> for IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: &IntExpr) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(self, rhs.clone())))
            }
        }
        impl std::ops::$trait<IntExpr> for &IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: IntExpr) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(self.clone(), rhs)))
            }
        }
        impl std::ops::$trait<&IntExpr> for &IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: &IntExpr) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(self.clone(), rhs.clone())))
            }
        }
        impl std::ops::$trait<i64> for IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: i64) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(self, IntExpr::constant(rhs))))
            }
        }
        impl std::ops::$trait<i64> for &IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: i64) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(
                    self.clone(),
                    IntExpr::constant(rhs),
                )))
            }
        }
        impl std::ops::$trait<IntExpr> for i64 {
            type Output = IntExpr;
            fn $method(self, rhs: IntExpr) -> IntExpr {
                IntExpr(Arc::new(IntNode::$node(IntExpr::constant(self), rhs)))
            }
        }
    };
}

int_binop!(Add, add, Add);
int_binop!(Sub, sub, Sub);
int_binop!(Mul, mul, Mul);

/// Comparison operator of an atomic integer constraint (after normalization
/// only `≤`, `<` and `=` remain; `≥`/`>` swap operands, `≠` negates).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Less-or-equal.
    Le,
    /// Strictly less.
    Lt,
    /// Equal.
    Eq,
}

#[derive(Debug)]
pub(crate) enum BoolNode {
    Const(bool),
    Var(BoolVar),
    Cmp(CmpOp, IntExpr, IntExpr),
    Not(BoolExpr),
    And(Vec<BoolExpr>),
    Or(Vec<BoolExpr>),
    Iff(BoolExpr, BoolExpr),
}

/// A Boolean-valued expression over integer comparisons and propositional
/// variables.
#[derive(Clone, Debug)]
pub struct BoolExpr(pub(crate) Arc<BoolNode>);

impl BoolExpr {
    /// The constant `true`/`false`.
    pub fn constant(b: bool) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Const(b)))
    }

    pub(crate) fn node(&self) -> &BoolNode {
        &self.0
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(&self) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Not(self.clone())))
    }

    /// Conjunction.
    pub fn and(&self, rhs: impl Into<BoolExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::And(vec![self.clone(), rhs.into()])))
    }

    /// Disjunction.
    pub fn or(&self, rhs: impl Into<BoolExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Or(vec![self.clone(), rhs.into()])))
    }

    /// Implication `self → rhs`.
    pub fn implies(&self, rhs: impl Into<BoolExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Or(vec![self.not(), rhs.into()])))
    }

    /// Bi-implication `self ↔ rhs`.
    pub fn iff(&self, rhs: impl Into<BoolExpr>) -> BoolExpr {
        BoolExpr(Arc::new(BoolNode::Iff(self.clone(), rhs.into())))
    }

    /// Exclusive or.
    pub fn xor(&self, rhs: impl Into<BoolExpr>) -> BoolExpr {
        self.iff(rhs).not()
    }

    /// Conjunction of all expressions (`true` when empty).
    pub fn all<I: IntoIterator<Item = BoolExpr>>(items: I) -> BoolExpr {
        let v: Vec<BoolExpr> = items.into_iter().collect();
        match v.len() {
            0 => BoolExpr::constant(true),
            1 => v.into_iter().next().unwrap(),
            _ => BoolExpr(Arc::new(BoolNode::And(v))),
        }
    }

    /// Disjunction of all expressions (`false` when empty).
    pub fn any<I: IntoIterator<Item = BoolExpr>>(items: I) -> BoolExpr {
        let v: Vec<BoolExpr> = items.into_iter().collect();
        match v.len() {
            0 => BoolExpr::constant(false),
            1 => v.into_iter().next().unwrap(),
            _ => BoolExpr(Arc::new(BoolNode::Or(v))),
        }
    }
}

impl From<bool> for BoolExpr {
    fn from(b: bool) -> BoolExpr {
        BoolExpr::constant(b)
    }
}

impl From<BoolVar> for BoolExpr {
    fn from(v: BoolVar) -> BoolExpr {
        v.expr()
    }
}

impl From<&BoolExpr> for BoolExpr {
    fn from(e: &BoolExpr) -> BoolExpr {
        e.clone()
    }
}

/// Pointer pairs already compared (and found equal so far). Expression
/// graphs are DAGs with heavy node sharing, so a naive recursive equality
/// can revisit a shared subgraph once per reference — memoizing visited
/// pairs keeps the comparison linear in the number of distinct node pairs.
pub(crate) type SeenPairs = std::collections::HashSet<(usize, usize)>;

/// Structural equality of integer expressions: same tree shape, constants,
/// and variables (ids and ranges). Physically identical nodes short-circuit.
pub(crate) fn int_structural_eq(a: &IntExpr, b: &IntExpr, seen: &mut SeenPairs) -> bool {
    let pa = Arc::as_ptr(&a.0) as usize;
    let pb = Arc::as_ptr(&b.0) as usize;
    if pa == pb || !seen.insert((pa, pb)) {
        // Revisited pairs were already compared: a `false` outcome aborts
        // the whole comparison before any revisit, so reaching here again
        // means the earlier visit concluded equal.
        return true;
    }
    match (a.node(), b.node()) {
        (IntNode::Const(x), IntNode::Const(y)) => x == y,
        (IntNode::Var(x), IntNode::Var(y)) => x == y,
        (IntNode::Add(ax, ay), IntNode::Add(bx, by))
        | (IntNode::Sub(ax, ay), IntNode::Sub(bx, by))
        | (IntNode::Mul(ax, ay), IntNode::Mul(bx, by)) => {
            int_structural_eq(ax, bx, seen) && int_structural_eq(ay, by, seen)
        }
        _ => false,
    }
}

/// Structural equality of Boolean expressions (see [`int_structural_eq`]).
pub(crate) fn bool_structural_eq(a: &BoolExpr, b: &BoolExpr, seen: &mut SeenPairs) -> bool {
    let pa = Arc::as_ptr(&a.0) as usize;
    let pb = Arc::as_ptr(&b.0) as usize;
    if pa == pb || !seen.insert((pa, pb)) {
        return true;
    }
    match (a.node(), b.node()) {
        (BoolNode::Const(x), BoolNode::Const(y)) => x == y,
        (BoolNode::Var(x), BoolNode::Var(y)) => x == y,
        (BoolNode::Cmp(oa, ax, ay), BoolNode::Cmp(ob, bx, by)) => {
            oa == ob && int_structural_eq(ax, bx, seen) && int_structural_eq(ay, by, seen)
        }
        (BoolNode::Not(x), BoolNode::Not(y)) => bool_structural_eq(x, y, seen),
        (BoolNode::And(xs), BoolNode::And(ys)) | (BoolNode::Or(xs), BoolNode::Or(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| bool_structural_eq(x, y, seen))
        }
        (BoolNode::Iff(ax, ay), BoolNode::Iff(bx, by)) => {
            bool_structural_eq(ax, bx, seen) && bool_structural_eq(ay, by, seen)
        }
        _ => false,
    }
}

/// Evaluates an integer expression under concrete variable values
/// (`values[var.id]`). Used by tests and by model validation.
pub fn eval_int(e: &IntExpr, values: &dyn Fn(IntVar) -> i64) -> i64 {
    match e.node() {
        IntNode::Const(v) => *v,
        IntNode::Var(v) => values(*v),
        IntNode::Add(a, b) => eval_int(a, values) + eval_int(b, values),
        IntNode::Sub(a, b) => eval_int(a, values) - eval_int(b, values),
        IntNode::Mul(a, b) => eval_int(a, values) * eval_int(b, values),
    }
}

/// Evaluates a Boolean expression under concrete variable values.
pub fn eval_bool(
    e: &BoolExpr,
    ints: &dyn Fn(IntVar) -> i64,
    bools: &dyn Fn(BoolVar) -> bool,
) -> bool {
    match e.node() {
        BoolNode::Const(b) => *b,
        BoolNode::Var(v) => bools(*v),
        BoolNode::Cmp(op, a, b) => {
            let (x, y) = (eval_int(a, ints), eval_int(b, ints));
            match op {
                CmpOp::Le => x <= y,
                CmpOp::Lt => x < y,
                CmpOp::Eq => x == y,
            }
        }
        BoolNode::Not(a) => !eval_bool(a, ints, bools),
        BoolNode::And(v) => v.iter().all(|a| eval_bool(a, ints, bools)),
        BoolNode::Or(v) => v.iter().any(|a| eval_bool(a, ints, bools)),
        BoolNode::Iff(a, b) => eval_bool(a, ints, bools) == eval_bool(b, ints, bools),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(id: u32, lo: i64, hi: i64) -> IntVar {
        IntVar { id, lo, hi }
    }

    #[test]
    fn range_inference() {
        let x = var(0, 0, 10).expr();
        let y = var(1, -3, 5).expr();
        assert_eq!((&x + &y).range(), (-3, 15));
        assert_eq!((&x - &y).range(), (-5, 13));
        assert_eq!((&x * &y).range(), (-30, 50));
        assert_eq!((&x * 2 + 1).range(), (1, 21));
    }

    #[test]
    fn mul_range_covers_sign_combinations() {
        let a = var(0, -4, -2).expr();
        let b = var(1, -3, 7).expr();
        assert_eq!((&a * &b).range(), (-28, 12));
    }

    #[test]
    fn eval_matches_structure() {
        let x = var(0, 0, 100);
        let y = var(1, 0, 100);
        let e = (x.expr() + y.expr()) * 3 - 4;
        let values = |v: IntVar| if v.id == 0 { 5 } else { 7 };
        assert_eq!(eval_int(&e, &values), (5 + 7) * 3 - 4);
    }

    #[test]
    fn comparisons_evaluate() {
        let x = var(0, 0, 10);
        let c = x.expr().ge(4).and(x.expr().lt(8));
        let at = |v: i64| eval_bool(&c, &move |_| v, &|_| unreachable!());
        assert!(!at(3));
        assert!(at(4));
        assert!(at(7));
        assert!(!at(8));
    }

    #[test]
    fn junctors_evaluate() {
        let p = BoolVar { id: 0 };
        let q = BoolVar { id: 1 };
        let e = p.expr().implies(q.expr()).iff(p.expr().not().or(q.expr()));
        for (pv, qv) in [(false, false), (false, true), (true, false), (true, true)] {
            let b = move |v: BoolVar| if v.id == 0 { pv } else { qv };
            assert!(eval_bool(&e, &|_| 0, &b));
        }
    }

    #[test]
    fn sum_and_all_any_empty_cases() {
        assert_eq!(IntExpr::sum(std::iter::empty()).range(), (0, 0));
        assert!(eval_bool(
            &BoolExpr::all(std::iter::empty()),
            &|_| 0,
            &|_| false
        ));
        assert!(!eval_bool(
            &BoolExpr::any(std::iter::empty()),
            &|_| 0,
            &|_| false
        ));
    }

    #[test]
    fn ne_is_negated_eq() {
        let x = var(0, 0, 3);
        let e = x.expr().ne(2);
        assert!(eval_bool(&e, &|_| 1, &|_| false));
        assert!(!eval_bool(&e, &|_| 2, &|_| false));
    }
}
