//! Property-based cross-validation of the integer layer: random expression
//! systems are solved through triplet rewriting + bit-blasting (both
//! back-ends) and compared against brute-force enumeration over the variable
//! ranges.

use optalloc_intopt::{
    eval_bool, Backend, BinSearchMode, BoolExpr, IntExpr, IntProblem, IntVar, MinimizeOptions,
    MinimizeStatus,
};
use proptest::prelude::*;

/// Recipe for a random integer expression over `n` variables, as a tree of
/// tagged choices so that shrinking works well.
#[derive(Debug, Clone)]
enum ExprRecipe {
    Var(usize),
    Const(i64),
    Add(Box<ExprRecipe>, Box<ExprRecipe>),
    Sub(Box<ExprRecipe>, Box<ExprRecipe>),
    Mul(Box<ExprRecipe>, Box<ExprRecipe>),
}

fn build(recipe: &ExprRecipe, vars: &[IntVar]) -> IntExpr {
    match recipe {
        ExprRecipe::Var(i) => vars[i % vars.len()].expr(),
        ExprRecipe::Const(v) => IntExpr::constant(*v),
        ExprRecipe::Add(a, b) => build(a, vars) + build(b, vars),
        ExprRecipe::Sub(a, b) => build(a, vars) - build(b, vars),
        ExprRecipe::Mul(a, b) => build(a, vars) * build(b, vars),
    }
}

fn arb_expr() -> impl Strategy<Value = ExprRecipe> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(ExprRecipe::Var),
        (-5i64..=5).prop_map(ExprRecipe::Const),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| ExprRecipe::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

#[derive(Debug, Clone, Copy)]
enum CmpKind {
    Le,
    Lt,
    Eq,
    Ge,
}

fn arb_constraint() -> impl Strategy<Value = (ExprRecipe, CmpKind, i64)> {
    (
        arb_expr(),
        prop_oneof![
            Just(CmpKind::Le),
            Just(CmpKind::Lt),
            Just(CmpKind::Eq),
            Just(CmpKind::Ge)
        ],
        -20i64..=20,
    )
}

/// Variable ranges: 4 variables, each over a small window.
fn arb_ranges() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((-4i64..=2).prop_flat_map(|lo| (Just(lo), lo..=lo + 5)), 4)
}

fn apply_cmp(e: &IntExpr, kind: CmpKind, rhs: i64) -> BoolExpr {
    match kind {
        CmpKind::Le => e.le(rhs),
        CmpKind::Lt => e.lt(rhs),
        CmpKind::Eq => e.eq(rhs),
        CmpKind::Ge => e.ge(rhs),
    }
}

/// Enumerates all assignments over the ranges, calling `f` with values.
fn enumerate(ranges: &[(i64, i64)], f: &mut dyn FnMut(&[i64])) {
    let mut values: Vec<i64> = ranges.iter().map(|r| r.0).collect();
    loop {
        f(&values);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == ranges.len() {
                return;
            }
            if values[i] < ranges[i].1 {
                values[i] += 1;
                break;
            }
            values[i] = ranges[i].0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// SAT verdict and model validity match brute force on random constraint
    /// systems, for both backends.
    #[test]
    fn solve_matches_brute_force(
        ranges in arb_ranges(),
        constraints in proptest::collection::vec(arb_constraint(), 1..4),
    ) {
        let mut p = IntProblem::new();
        let vars: Vec<IntVar> = ranges.iter().map(|&(lo, hi)| p.int_var(lo, hi)).collect();
        let exprs: Vec<BoolExpr> = constraints
            .iter()
            .map(|(r, k, rhs)| apply_cmp(&build(r, &vars), *k, *rhs))
            .collect();
        for e in &exprs {
            p.assert(e.clone());
        }

        let mut any_sat = false;
        enumerate(&ranges, &mut |values| {
            if !any_sat {
                let ints = |v: IntVar| values[v.id() as usize];
                if exprs.iter().all(|e| eval_bool(e, &ints, &|_| false)) {
                    any_sat = true;
                }
            }
        });

        for backend in [Backend::Cnf, Backend::PseudoBoolean] {
            match p.solve(backend) {
                Some(model) => {
                    prop_assert!(any_sat, "{backend:?} found a model where none exists");
                    // The returned model must satisfy every constraint and
                    // respect every range.
                    for (v, &(lo, hi)) in vars.iter().zip(&ranges) {
                        let value = model.int(*v);
                        prop_assert!(value >= lo && value <= hi,
                            "{backend:?}: {value} outside [{lo},{hi}]");
                    }
                    let ints = |v: IntVar| model.int(v);
                    for e in &exprs {
                        prop_assert!(eval_bool(e, &ints, &|_| false),
                            "{backend:?}: model violates a constraint");
                    }
                }
                None => prop_assert!(!any_sat, "{backend:?} reported UNSAT on a SAT instance"),
            }
        }
    }

    /// The binary-search minimum equals the brute-force minimum, in both
    /// modes, and the two modes agree with each other.
    #[test]
    fn minimize_matches_brute_force(
        ranges in arb_ranges(),
        objective in arb_expr(),
        constraints in proptest::collection::vec(arb_constraint(), 0..3),
    ) {
        let mut p = IntProblem::new();
        let vars: Vec<IntVar> = ranges.iter().map(|&(lo, hi)| p.int_var(lo, hi)).collect();
        let exprs: Vec<BoolExpr> = constraints
            .iter()
            .map(|(r, k, rhs)| apply_cmp(&build(r, &vars), *k, *rhs))
            .collect();
        for e in &exprs {
            p.assert(e.clone());
        }
        let obj = build(&objective, &vars);
        let (obj_lo, obj_hi) = obj.range();
        // BIN_SEARCH per the paper assumes a non-negative cost; shift the
        // objective into IN like the encoder does for real objectives.
        let shift = -obj_lo.min(0);
        let cost = p.int_var(0, obj_hi + shift);
        p.assert(cost.expr().eq(obj.clone() + shift));

        let mut best: Option<i64> = None;
        enumerate(&ranges, &mut |values| {
            let ints = |v: IntVar| values[v.id() as usize];
            if exprs.iter().all(|e| eval_bool(e, &ints, &|_| false)) {
                let c = optalloc_intopt::eval_int(&obj, &ints) + shift;
                best = Some(best.map_or(c, |b: i64| b.min(c)));
            }
        });

        for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
            let out = p.minimize(cost, &MinimizeOptions {
                mode,
                ..Default::default()
            });
            match (&out.status, best) {
                (MinimizeStatus::Optimal { value, model }, Some(b)) => {
                    prop_assert_eq!(*value, b, "{:?}: wrong optimum", mode);
                    let ints = |v: IntVar| model.int(v);
                    for e in &exprs {
                        prop_assert!(eval_bool(e, &ints, &|_| false),
                            "{mode:?}: optimal model violates a constraint");
                    }
                    prop_assert_eq!(optalloc_intopt::eval_int(&obj, &ints) + shift, b,
                        "{:?}: model does not attain the optimum", mode);
                }
                (MinimizeStatus::Infeasible, None) => {}
                (s, b) => prop_assert!(false, "{mode:?}: got {s:?}, brute force {b:?}"),
            }
        }
    }
}
