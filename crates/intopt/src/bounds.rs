//! Cost-bound machinery shared by the minimization searches: the exact
//! [`Interval`] arithmetic the triplet encoder infers helper-variable
//! ranges with, and the cross-worker [`BoundLattice`].
//!
//! # The bound lattice
//!
//! PR 1's portfolio shared only the *upper* incumbent bound (an `AtomicI64`
//! tightened with `fetch_min`). That leaves the terminal UNSAT certification
//! serial: every worker re-proves the same lower bound. [`BoundLattice`]
//! pairs the incumbent bound with a certified *lower* bound tightened with
//! `fetch_max`, so any worker's UNSAT proof over `[L, M]` shrinks everyone's
//! remaining window from below.
//!
//! The two sides form a lattice in the order-theoretic sense: `lower` only
//! ever rises, `upper` only ever falls, and both moves are monotone atomic
//! folds — concurrent publications commute, so no ordering between workers
//! is needed for soundness. The optimum (when one exists) always satisfies
//! `lower ≤ opt ≤ upper`; once `lower ≥ upper` the incumbent is proven
//! optimal and the search is over.
//!
//! A worker may observe the lower bound *overtake* the upper bound
//! mid-probe (another worker certified `L > U` while this one was solving a
//! now-stale window). That is not an inconsistency — it simply means the
//! window is exhausted — and every consumer must treat `lower > upper` as
//! "done", never as an error (see the bound-crossing tests).

use std::sync::atomic::{AtomicI64, Ordering};

/// A closed integer interval `[lo, hi]` with exact (tightest-possible)
/// interval arithmetic.
///
/// This is the range algebra behind the paper's "appropriate ranges … from
/// the ranges of the subexpressions": the triplet encoder infers every
/// helper variable's bit-width from the interval computed bottom-up over
/// its defining expression, so each operation here must return exactly
/// `{a ⊗ b | a ∈ self, b ∈ other}`'s convex hull — a looser result wastes
/// encoding bits, a tighter one makes the encoding unsound.
///
/// Arithmetic is plain (non-saturating) `i64`: the encoder only ever feeds
/// ranges derived from validated instance data, far from overflow.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower end.
    pub lo: i64,
    /// Inclusive upper end.
    pub hi: i64,
}

// The arithmetic methods intentionally mirror the `IntExpr` node names
// (`add`/`neg`/`mul`/…) rather than the operator traits, so the blaster's
// per-node range computation reads 1:1 against the expression walker.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The interval `[lo, hi]`; requires `lo ≤ hi`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The one-point interval `[v, v]`.
    pub fn singleton(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `true` if `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Pointwise sum: `[a+c, b+d]`.
    pub fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    /// Pointwise negation: `-[a, b] = [-b, -a]`.
    pub fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    /// Pointwise difference, via `self + (-o)`.
    pub fn sub(self, o: Interval) -> Interval {
        self.add(o.neg())
    }

    /// Pointwise product. Multiplication is monotone in each operand only
    /// per sign region, so the hull is the min/max over the four corner
    /// products — the classical zero-crossing-safe rule.
    pub fn mul(self, o: Interval) -> Interval {
        let p = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::new(
            p.iter().copied().min().unwrap(),
            p.iter().copied().max().unwrap(),
        )
    }

    /// Pointwise left shift (multiplication by `2^k`), used for power-of-two
    /// scalings without a corner scan: shifting is monotone, so the ends
    /// shift independently even across zero.
    pub fn shl(self, k: u32) -> Interval {
        Interval::new(self.lo << k, self.hi << k)
    }

    /// Number of integers in the interval (saturating).
    pub fn width(&self) -> u64 {
        self.hi.abs_diff(self.lo).saturating_add(1)
    }
}

/// A shared pair of monotone cost bounds (see the module docs).
///
/// `lower` carries *certified* knowledge (UNSAT proofs: no solution cheaper
/// than `lower` exists); `upper` carries *witnessed* knowledge (some worker
/// holds a model of cost `upper`). Reads and writes use relaxed ordering —
/// the bounds are pure optimization hints folded between probes, and every
/// terminal verdict is re-derived from a probe result, not from the lattice.
pub struct BoundLattice {
    lower: AtomicI64,
    upper: AtomicI64,
}

impl std::fmt::Debug for BoundLattice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundLattice")
            .field("lower", &self.lower())
            .field("upper", &self.upper())
            .finish()
    }
}

impl Default for BoundLattice {
    fn default() -> BoundLattice {
        BoundLattice::new()
    }
}

impl BoundLattice {
    /// A lattice with both sides at their vacuous extremes.
    pub fn new() -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(i64::MIN),
            upper: AtomicI64::new(i64::MAX),
        }
    }

    /// A lattice pre-seeded with `lower ≥ lo` and `upper ≤ hi`.
    pub fn with_bounds(lo: i64, hi: i64) -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(lo),
            upper: AtomicI64::new(hi),
        }
    }

    /// Certified lower bound: no solution cheaper than this exists.
    pub fn lower(&self) -> i64 {
        self.lower.load(Ordering::Relaxed)
    }

    /// Witnessed upper bound: some worker holds a model this cheap.
    pub fn upper(&self) -> i64 {
        self.upper.load(Ordering::Relaxed)
    }

    /// Both sides, read independently (no cross-side atomicity — callers
    /// must tolerate `lower > upper`, which means "search exhausted").
    pub fn snapshot(&self) -> (i64, i64) {
        (self.lower(), self.upper())
    }

    /// Folds in a certified lower bound (`fetch_max`); returns the lattice
    /// lower bound after the fold.
    pub fn publish_lower(&self, bound: i64) -> i64 {
        self.lower.fetch_max(bound, Ordering::Relaxed).max(bound)
    }

    /// Folds in a witnessed upper bound (`fetch_min`); returns the lattice
    /// upper bound after the fold.
    pub fn publish_upper(&self, bound: i64) -> i64 {
        self.upper.fetch_min(bound, Ordering::Relaxed).min(bound)
    }

    /// True once the window is exhausted: `lower ≥ upper` means the
    /// incumbent (if any) is proven optimal.
    pub fn closed(&self) -> bool {
        self.lower() >= self.upper()
    }
}

/// Per-reader monotonicity monitor for a [`BoundLattice`] (checked mode).
///
/// Because both sides of the lattice only ever move by `fetch_max`
/// (`lower`) and `fetch_min` (`upper`), a *single reader's* successive
/// relaxed loads of the same atomic are guaranteed monotone by per-location
/// coherence — the lower bound may only rise and the upper may only fall.
/// `observe` asserts exactly that, from one reader's point of view; it must
/// **not** compare observations across threads (two readers' interleavings
/// carry no such guarantee). Instantiate one watch per search loop and feed
/// it every fold.
#[derive(Debug)]
pub struct BoundWatch {
    seen_lower: i64,
    seen_upper: i64,
}

impl Default for BoundWatch {
    fn default() -> BoundWatch {
        BoundWatch::new()
    }
}

impl BoundWatch {
    /// A watch that accepts any first observation.
    pub fn new() -> BoundWatch {
        BoundWatch {
            seen_lower: i64::MIN,
            seen_upper: i64::MAX,
        }
    }

    /// Reads both sides of `lattice` and panics if either regressed
    /// relative to what *this* watch saw before.
    pub fn observe(&mut self, lattice: &BoundLattice) {
        let (lo, hi) = lattice.snapshot();
        assert!(
            lo >= self.seen_lower,
            "BoundLattice lower bound regressed: {} -> {lo}",
            self.seen_lower
        );
        assert!(
            hi <= self.seen_upper,
            "BoundLattice upper bound rose: {} -> {hi}",
            self.seen_upper
        );
        self.seen_lower = lo;
        self.seen_upper = hi;
    }
}

#[cfg(test)]
mod interval_tests {
    use super::Interval;
    use proptest::prelude::*;

    /// Brute-force hull of `{f(a, b) | a ∈ x, b ∈ y}` by exhaustive
    /// enumeration — the ground truth every interval op is checked against.
    fn exhaustive_hull(x: Interval, y: Interval, f: impl Fn(i64, i64) -> i64) -> Interval {
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for a in x.lo..=x.hi {
            for b in y.lo..=y.hi {
                let v = f(a, b);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Interval::new(lo, hi)
    }

    /// A small interval strategy that deliberately produces negative,
    /// positive and zero-crossing ranges (the sign regions where interval
    /// multiplication is easiest to get wrong).
    fn small_interval() -> impl Strategy<Value = Interval> {
        (-12i64..=12, 0i64..=9).prop_map(|(lo, w)| Interval::new(lo, lo + w))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn add_matches_exhaustive_enumeration(
            x in small_interval(), y in small_interval()
        ) {
            prop_assert_eq!(x.add(y), exhaustive_hull(x, y, |a, b| a + b));
        }

        #[test]
        fn sub_matches_exhaustive_enumeration(
            x in small_interval(), y in small_interval()
        ) {
            prop_assert_eq!(x.sub(y), exhaustive_hull(x, y, |a, b| a - b));
        }

        #[test]
        fn mul_matches_exhaustive_enumeration(
            x in small_interval(), y in small_interval()
        ) {
            // The four-corner rule must be *exactly* the enumerated hull:
            // sound (no product escapes) and tight (both ends attained).
            prop_assert_eq!(x.mul(y), exhaustive_hull(x, y, |a, b| a * b));
        }

        #[test]
        fn neg_matches_exhaustive_enumeration(x in small_interval()) {
            prop_assert_eq!(x.neg(), exhaustive_hull(x, x, |a, _| -a));
            // Involution: negating twice is the identity.
            prop_assert_eq!(x.neg().neg(), x);
        }

        #[test]
        fn shl_matches_mul_by_power_of_two(
            x in small_interval(), k in 0u32..=6
        ) {
            let pow = Interval::singleton(1i64 << k);
            prop_assert_eq!(x.shl(k), x.mul(pow));
            prop_assert_eq!(x.shl(k), exhaustive_hull(x, x, |a, _| a << k));
        }

        #[test]
        fn ops_are_sound_pointwise(
            x in small_interval(), y in small_interval()
        ) {
            // Membership closure: every concrete pair lands inside the
            // computed interval for every operator (incl. across zero).
            for a in x.lo..=x.hi {
                for b in y.lo..=y.hi {
                    prop_assert!(x.add(y).contains(a + b));
                    prop_assert!(x.sub(y).contains(a - b));
                    prop_assert!(x.mul(y).contains(a * b));
                    prop_assert!(x.neg().contains(-a));
                }
            }
        }
    }

    #[test]
    fn zero_crossing_mul_corners() {
        // Hand-picked sign-region cases: (neg × neg), (neg × pos),
        // (crossing × crossing), (crossing × neg).
        let cases = [
            (Interval::new(-5, -2), Interval::new(-7, -3), (6, 35)),
            (Interval::new(-5, -2), Interval::new(3, 7), (-35, -6)),
            (Interval::new(-4, 3), Interval::new(-2, 5), (-20, 15)),
            (Interval::new(-4, 3), Interval::new(-6, -1), (-18, 24)),
        ];
        for (x, y, (lo, hi)) in cases {
            assert_eq!(x.mul(y), Interval::new(lo, hi), "{x:?} × {y:?}");
        }
    }

    #[test]
    fn width_counts_inclusively() {
        assert_eq!(Interval::new(-3, 3).width(), 7);
        assert_eq!(Interval::singleton(9).width(), 1);
        assert_eq!(Interval::new(i64::MIN, i64::MAX).width(), u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folds_are_monotone() {
        let b = BoundLattice::new();
        assert_eq!(b.publish_lower(3), 3);
        assert_eq!(b.publish_lower(1), 3); // lower never regresses
        assert_eq!(b.publish_upper(10), 10);
        assert_eq!(b.publish_upper(12), 10); // upper never regresses
        assert_eq!(b.snapshot(), (3, 10));
        assert!(!b.closed());
        b.publish_lower(10);
        assert!(b.closed());
    }

    #[test]
    fn crossing_is_terminal_not_fatal() {
        // Another worker certifies L = 9 while we hold an incumbent of 5:
        // can only happen through unsound use OR a stale read, but the
        // lattice itself must stay well-defined and report "closed".
        let b = BoundLattice::with_bounds(9, 5);
        assert!(b.closed());
        assert_eq!(b.snapshot(), (9, 5));
    }

    /// Convergence against a certified optimum: lower-side publishers only
    /// ever publish *certified* bounds (≤ OPT by soundness of UNSAT
    /// proofs), upper-side publishers only *witnessed* bounds (≥ OPT by
    /// feasibility). However the publications interleave, the lattice must
    /// never cross the optimum from either side, and once both sides have
    /// published their best facts it must close exactly at OPT.
    #[test]
    fn interleaved_publishers_never_cross_the_certified_optimum() {
        const OPT: i64 = 1_000;
        let b = Arc::new(BoundLattice::new());
        let mut handles = Vec::new();
        for t in 0..4i64 {
            // Lower publishers: rising certified bounds capped at OPT.
            let lat = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    let certified = ((t * 7 + i * 13) % (OPT + 1)).min(OPT);
                    let folded = lat.publish_lower(certified);
                    assert!(folded <= OPT, "lower fold {folded} crossed the optimum");
                }
                lat.publish_lower(OPT);
            }));
            // Upper publishers: falling witnessed bounds floored at OPT.
            let lat = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    let witnessed = OPT + ((t * 11 + i * 17) % 5_000);
                    let folded = lat.publish_upper(witnessed);
                    assert!(folded >= OPT, "upper fold {folded} crossed the optimum");
                }
                lat.publish_upper(OPT);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Both sides converged exactly onto the optimum and the window is
        // closed — the terminal state of every sound cooperating search.
        assert_eq!(b.snapshot(), (OPT, OPT));
        assert!(b.closed());
    }

    /// Mid-flight invariant under concurrency: sample the lattice while
    /// sound publishers hammer it; every snapshot must bracket the optimum
    /// (lower ≤ OPT ≤ upper) — a reader can never observe a crossed state
    /// when all publications are sound.
    #[test]
    fn snapshots_bracket_the_optimum_while_publishing() {
        const OPT: i64 = 64;
        let b = Arc::new(BoundLattice::new());
        let writers: Vec<_> = (0..2i64)
            .map(|t| {
                let lat = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        lat.publish_lower((i + t) % (OPT + 1));
                        lat.publish_upper(OPT + (i * 3 + t) % 100);
                    }
                })
            })
            .collect();
        let reader = {
            let lat = Arc::clone(&b);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let (lo, hi) = lat.snapshot();
                    assert!(lo <= OPT, "reader saw certified lower {lo} > optimum");
                    assert!(hi >= OPT, "reader saw witnessed upper {hi} < optimum");
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
    }

    #[test]
    fn concurrent_folds_commute() {
        let b = Arc::new(BoundLattice::new());
        let handles: Vec<_> = (0..4i64)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        b.publish_lower(t * 1_000 + i);
                        b.publish_upper(100_000 - (t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.lower(), 3_999);
        assert_eq!(b.upper(), 96_001);
    }
}
