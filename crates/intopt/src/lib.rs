//! # optalloc-intopt
//!
//! Bounded-integer constraint solving and **optimization** by reduction to
//! propositional satisfiability — the numeric engine of the paper
//! *"An optimal approach to the task allocation problem on hierarchical
//! architectures"* (Metzner, Fränzle, Herde, Stierand; IPPS 2006), §5.
//!
//! The pipeline is exactly the paper's:
//!
//! 1. Boolean combinations of (non)linear integer constraints are built with
//!    [`IntExpr`]/[`BoolExpr`] and collected in an [`IntProblem`];
//! 2. [`IntProblem::triplet_form`] rewrites them to *triplet form*
//!    (Tseitin-style helper-variable introduction with common-subexpression
//!    elimination);
//! 3. the triplets are bit-blasted to a CDCL(PB) solver using two's
//!    complement bit-vectors whose widths come from inferred ranges
//!    ([`Backend::Cnf`] or [`Backend::PseudoBoolean`]);
//! 4. [`IntProblem::minimize`] wraps the solver in the paper's `BIN_SEARCH`
//!    scheme, either re-encoding per probe ([`BinSearchMode::Fresh`]) or
//!    reusing one incremental solver with guard-literal bounds
//!    ([`BinSearchMode::Incremental`], the paper's §7 learned-clause-reuse
//!    extension).
//!
//! ## Example: minimize a nonlinear objective
//!
//! ```
//! use optalloc_intopt::{IntProblem, MinimizeOptions, MinimizeStatus};
//!
//! let mut p = IntProblem::new();
//! let x = p.int_var(0, 20);
//! let y = p.int_var(0, 20);
//! let cost = p.int_var(0, 400);
//! p.assert((x.expr() + y.expr()).ge(10));
//! p.assert(cost.expr().eq(x.expr() * y.expr() + x.expr()));
//! let out = p.minimize(cost, &MinimizeOptions::default());
//! match out.status {
//!     MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 0), // x = 0, y = 10
//!     _ => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

mod binsearch;
mod blast;
mod bounds;
mod certificate;
mod expr;
mod prober;
mod problem;
mod triplet;
mod warm;

pub use binsearch::{
    BinSearchMode, EncodeStats, IncumbentCallback, MinimizeOptions, MinimizeOutcome, MinimizeStatus,
};
pub use blast::{blast, blast_with, Backend, Blast, EncoderOpt};
pub use bounds::{BoundLattice, BoundWatch, Interval};
pub use certificate::{
    Certificate, CertificateError, CertificateSummary, CertifiedWindow, WindowProof,
};
pub use expr::{eval_bool, eval_int, BoolExpr, BoolVar, CmpOp, IntExpr, IntVar};
pub use prober::{CostProber, Probe};
pub use problem::{IntProblem, Model};
pub use triplet::{ArithOp, BoolDef, BoolId, IntDef, IntDefKind, IntId, TripletForm};
pub use warm::{WarmEngine, WarmMode};

// Re-export the PB operator type used by `IntProblem::assert_pb`, plus the
// search-engine knobs callers tune through `MinimizeOptions::solver_config`.
pub use optalloc_sat::{PbOp, RestartPolicy, SearchEngine};
