//! Scaling series for Tables 2 and 3.
//!
//! * **Table 2** — fixed 30-task application, architectures growing from 8
//!   to 64 ECUs on a token ring.
//! * **Table 3** — growing partitions (7, 12, 20, 30, 43 tasks) of the
//!   Tindell-style benchmark on 8 ECUs.

use crate::gen::{generate, GenParams, Workload};

/// The paper's Table 2 ECU counts.
pub const TABLE2_ECUS: [usize; 6] = [8, 16, 25, 32, 45, 64];

/// The paper's Table 3 task counts.
pub const TABLE3_TASKS: [usize; 5] = [7, 12, 20, 30, 43];

/// Table 2 instance: 30 tasks with chains and extra requirements on
/// `n_ecus` token-ring ECUs.
pub fn architecture_scaling(n_ecus: usize) -> Workload {
    generate(&GenParams {
        name: format!("table2-e{n_ecus}"),
        n_tasks: 30,
        n_chains: 8,
        n_ecus,
        seed: 0x7ab1_e200 + n_ecus as u64,
        utilization: 0.40,
        restricted_fraction: 0.2,
        redundant_pairs: 2,
        token_ring: true,
        deadline_slack: 1.4,
    })
}

/// Table 3 instance: `n_tasks` tasks (a partition of the benchmark) on
/// 8 token-ring ECUs.
pub fn task_scaling(n_tasks: usize) -> Workload {
    generate(&GenParams {
        name: format!("table3-t{n_tasks}"),
        n_tasks,
        n_chains: (n_tasks / 3).max(1),
        n_ecus: 8,
        seed: 0x7ab1_e300,
        utilization: 0.40,
        restricted_fraction: 0.25,
        redundant_pairs: if n_tasks >= 12 { 2 } else { 0 },
        token_ring: true,
        deadline_slack: 1.4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_analysis::{validate, AnalysisConfig};

    #[test]
    fn table2_series_is_planted_feasible() {
        for &e in &TABLE2_ECUS {
            let w = architecture_scaling(e);
            assert_eq!(w.arch.num_ecus(), e);
            assert_eq!(w.tasks.len(), 30);
            let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
            assert!(report.is_feasible(), "{e} ECUs: {:?}", report.violations);
        }
    }

    #[test]
    fn table3_series_is_planted_feasible() {
        for &t in &TABLE3_TASKS {
            let w = task_scaling(t);
            assert_eq!(w.tasks.len(), t);
            let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
            assert!(report.is_feasible(), "{t} tasks: {:?}", report.violations);
        }
    }
}
