//! Differential certification harness: on random small instances the
//! certified optimizer must (a) produce a certificate that the checker
//! accepts, (b) never be beaten by a feasible heuristic allocation (greedy
//! or simulated annealing — an *upper*-bound oracle for the true optimum),
//! and (c) emit a witness that survives an independent replay through the
//! numeric analysis with the objective recomputed away from the encoder.
//!
//! The heuristics share no code with the SAT pipeline below the model
//! layer, so agreement here cross-checks the encoder, the solver, the
//! proof checker and the analysis against each other.
//!
//! Reproducibility knobs (CI pins all of these — see docs/TESTING.md):
//! `PROPTEST_RNG_SEED` fixes the case-generation RNG, `PROPTEST_CASES`
//! scales the number of cases, and `PROPTEST_REGRESSIONS_DIR` persists
//! shrunk counterexamples under `tests/regressions/`.

use optalloc::{Objective, Optimizer, RestartPolicy, SearchEngine, SolveOptions, Strategy};
use optalloc_analysis::validate;
use optalloc_heuristics::{anneal, greedy, objective_value, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};
use proptest::prelude::*;

fn tiny(seed: u64, n_tasks: usize, token_ring: bool) -> GenParams {
    GenParams {
        name: format!("certify-{seed}"),
        n_tasks,
        n_chains: 2,
        n_ecus: 3,
        seed,
        utilization: 0.3,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring,
        deadline_slack: 1.5,
    }
}

fn certified_options(strategy: Strategy) -> SolveOptions {
    SolveOptions {
        max_slot: 16,
        certify: true,
        strategy,
        ..Default::default()
    }
}

fn quick_sa() -> SaParams {
    SaParams {
        restarts: 2,
        iters_per_stage: 120,
        stages: 25,
        max_slot: 16,
        ..SaParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Certified optimum ≤ every feasible heuristic cost, and the witness
    /// replays cleanly through the analysis without the encoder.
    #[test]
    fn heuristics_never_beat_the_certified_optimum(
        seed in 0u64..1000,
        n_tasks in 6usize..=8,
    ) {
        let w = generate(&tiny(seed, n_tasks, false));
        let objective = Objective::MaxUtilizationPermille;
        let h_objective = HeuristicObjective::MaxUtilizationPermille;

        let optimizer = Optimizer::new(&w.arch, &w.tasks)
            .with_options(certified_options(Strategy::Single));
        let r = optimizer
            .minimize(&objective)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        // (a) A certificate was produced; re-check it here rather than
        // trusting the optimizer's internal verification.
        let cert = r.certificate.as_ref().expect("certify=true yields a certificate");
        let summary = cert.certificate.verify()
            .unwrap_or_else(|e| panic!("seed {seed}: certificate rejected: {e}"));
        prop_assert_eq!(cert.certificate.optimum, r.cost);
        prop_assert!(summary.proofs >= 1);

        // (b) Upper-bound oracles: any *feasible* heuristic allocation
        // costs at least the certified optimum.
        let g = greedy(&w.arch, &w.tasks, &h_objective);
        if g.feasible {
            prop_assert!(
                g.objective >= r.cost,
                "greedy {} beat certified optimum {}", g.objective, r.cost
            );
        }
        let sa = anneal(&w.arch, &w.tasks, &h_objective, &quick_sa());
        if sa.feasible {
            prop_assert!(
                sa.objective >= r.cost,
                "annealing {} beat certified optimum {}", sa.objective, r.cost
            );
        }

        // (c) Independent witness replay: the decoded allocation passes
        // the numeric schedulability analysis and its objective value,
        // recomputed through the analysis crate, equals the proven cost.
        let report = validate(
            &w.arch,
            &w.tasks,
            &r.solution.allocation,
            &optimizer.analysis_config(),
        );
        prop_assert!(
            report.is_feasible(),
            "witness fails analysis replay: {:?}", report.violations
        );
        let replayed = objective_value(&w.arch, &w.tasks, &r.solution.allocation, &h_objective);
        prop_assert_eq!(replayed, r.cost, "replayed objective diverges from proven optimum");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every point of the restart-policy × tiered-DB × vivification/
    /// elimination grid proves the same certified optimum, and every proof
    /// checks. This is the soundness contract of the search engine: the
    /// axes may change how the search runs, never what it proves — even
    /// with DRAT logging on, where vivification must log its
    /// strengthenings derivation-first and variable elimination its
    /// resolvents parents-first.
    #[test]
    fn search_engine_grid_certifies_identical_optima(
        seed in 0u64..1000,
        n_tasks in 6usize..=7,
    ) {
        let w = generate(&tiny(seed, n_tasks, true));
        let objective = Objective::TokenRotationTime(MediumId(0));
        let mut reference: Option<i64> = None;
        for restart in [RestartPolicy::Luby, RestartPolicy::Ema] {
            for tiered_db in [false, true] {
                for (vivify, elim) in [(false, false), (true, false), (false, true), (true, true)] {
                    let search = SearchEngine {
                        binary_watches: true,
                        tiered_db,
                        restart,
                        vivify,
                        elim,
                    };
                    let opts = SolveOptions {
                        search,
                        ..certified_options(Strategy::Single)
                    };
                    let r = Optimizer::new(&w.arch, &w.tasks)
                        .with_options(opts)
                        .minimize(&objective)
                        .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", search.label()));
                    let cert = r
                        .certificate
                        .as_ref()
                        .expect("certify=true yields a certificate");
                    cert.certificate.verify().unwrap_or_else(|e| {
                        panic!("seed {seed} {}: certificate rejected: {e}", search.label())
                    });
                    prop_assert_eq!(cert.certificate.optimum, r.cost);
                    let expect = *reference.get_or_insert(r.cost);
                    prop_assert_eq!(
                        r.cost,
                        expect,
                        "seed {} engine {}: optimum moved",
                        seed,
                        search.label()
                    );
                }
            }
        }
    }
}

/// Fixed-seed token-ring instances: all three strategies produce accepted
/// certificates over the *same* optimum, including the slot-variable
/// (TRT) objective that exercises guarded window claims hardest.
#[test]
fn all_strategies_certify_the_same_trt_optimum() {
    let ring = MediumId(0);
    for seed in [7u64, 19] {
        let w = generate(&tiny(seed, 7, true));
        let strategies = [
            Strategy::Single,
            Strategy::Portfolio {
                workers: 2,
                deterministic: true,
            },
            Strategy::WindowSearch {
                workers: 2,
                deterministic: true,
            },
        ];
        let mut costs = Vec::new();
        for strategy in strategies {
            let label = format!("{strategy:?}");
            let r = Optimizer::new(&w.arch, &w.tasks)
                .with_options(certified_options(strategy))
                .minimize(&Objective::TokenRotationTime(ring))
                .unwrap_or_else(|e| panic!("seed {seed} {label}: {e}"));
            let cert = r.certificate.as_ref().expect("certificate present");
            cert.certificate
                .verify()
                .unwrap_or_else(|e| panic!("seed {seed} {label}: rejected: {e}"));
            assert_eq!(cert.certificate.optimum, r.cost, "seed {seed} {label}");
            costs.push(r.cost);
        }
        assert!(
            costs.windows(2).all(|c| c[0] == c[1]),
            "seed {seed}: strategies disagree under certification: {costs:?}"
        );
    }
}

/// Certification must not change the proven optimum: certify on/off agree
/// on random instances (the proof log is observation, not search).
#[test]
fn certification_is_cost_neutral() {
    for seed in [101u64, 202, 303] {
        let w = generate(&tiny(seed, 7, false));
        let objective = Objective::UtilizationSpreadPermille;
        let plain = Optimizer::new(&w.arch, &w.tasks)
            .minimize(&objective)
            .unwrap_or_else(|e| panic!("seed {seed} plain: {e}"));
        assert!(
            plain.certificate.is_none(),
            "uncertified run carries no certificate"
        );
        let certified = Optimizer::new(&w.arch, &w.tasks)
            .with_options(certified_options(Strategy::Single))
            .minimize(&objective)
            .unwrap_or_else(|e| panic!("seed {seed} certified: {e}"));
        assert_eq!(
            plain.cost, certified.cost,
            "seed {seed}: certification changed the optimum"
        );
        certified
            .certificate
            .expect("certificate present")
            .certificate
            .verify()
            .unwrap_or_else(|e| panic!("seed {seed}: rejected: {e}"));
    }
}
