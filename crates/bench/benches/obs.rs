//! Criterion micro-benchmarks of the observability layer.
//!
//! Two kinds of measurement back the overhead contract in
//! `docs/OBSERVABILITY.md`:
//!
//! - `registry/*` — the raw primitive costs (counter increment, gauge
//!   set, histogram observe, the disabled-stopwatch branch);
//! - `solve/*` — the canonical `table3-t<N>` minimization with the obs
//!   handle disabled vs. enabled, whose ratio the CI gate
//!   (`obs_overhead`) enforces. Compare the `disabled` row against a
//!   pre-change baseline with `cargo bench --bench obs -- --save-baseline`
//!   to check the ≤2% disabled-path budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_model::MediumId;
use optalloc_obs::{MetricsRegistry, Obs, Phase, DEFAULT_MS_BUCKETS};
use optalloc_workloads::task_scaling;

fn bench_registry(c: &mut Criterion) {
    let mut g = c.benchmark_group("registry");
    let reg = MetricsRegistry::new();
    let counter = reg.counter("bench.counter");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let gauge = reg.gauge("bench.gauge");
    g.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v += 1;
            gauge.set(std::hint::black_box(v));
        })
    });
    let histogram = reg.histogram("bench.histogram", DEFAULT_MS_BUCKETS);
    g.bench_function("histogram_observe", |b| {
        let mut v = 0.1f64;
        b.iter(|| {
            v = (v * 1.7) % 80_000.0;
            histogram.observe(std::hint::black_box(v));
        })
    });

    // The cost a solver pays per consult when nothing is recording: this
    // must stay a branch, not a measurement.
    let disabled = Obs::disabled();
    g.bench_function("stopwatch_disabled", |b| {
        b.iter(|| std::hint::black_box(disabled.stopwatch(Phase::Search)).finish())
    });
    let enabled = Obs::enabled();
    g.bench_function("stopwatch_enabled", |b| {
        b.iter(|| std::hint::black_box(enabled.stopwatch(Phase::Search)).finish())
    });
    g.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve");
    g.sample_size(10);
    let w = task_scaling(12);
    for (label, obs) in [("disabled", Obs::disabled()), ("enabled", Obs::enabled())] {
        g.bench_with_input(BenchmarkId::new("t12", label), &obs, |b, obs| {
            b.iter(|| {
                let opts = SolveOptions {
                    max_conflicts: Some(3_000_000),
                    max_slot: 24,
                    obs: obs.clone(),
                    ..Default::default()
                };
                let r = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(opts)
                    .minimize(&Objective::TokenRotationTime(MediumId(0)))
                    .expect("canonical instance solves");
                std::hint::black_box(r.cost)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_registry, bench_solve);
criterion_main!(benches);
