//! Synthetic Tindell-style workload generator.
//!
//! The paper evaluates on the 43-task / 12-chain automotive benchmark of
//! Tindell, Burns & Wellings \[5\], whose exact numbers are not published in
//! machine-readable form. This generator produces *same-shape* synthetic
//! instances: periodic tasks grouped into message chains, heterogeneous
//! WCETs, restricted placements, redundant (separated) pairs, memory
//! budgets and a token-ring (or CAN) backbone.
//!
//! Instances are **planted-feasible**: the generator first fixes a
//! placement, then derives WCETs, deadlines and slot tables so that this
//! placement is schedulable — guaranteeing the optimizer's search space is
//! non-empty, like the paper's industrial sets. The planted allocation is
//! returned as a witness and double-checked by the crate's tests.
//!
//! All times are in ticks of 50 µs (see `optalloc_model::ms_to_ticks`).

use optalloc_model::{
    Allocation, Architecture, Ecu, EcuId, Medium, MediumKind, MessageRoute, MsgId, Task, TaskId,
    TaskSet, Time,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Workload name.
    pub name: String,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Number of communication chains (each chain links consecutive tasks
    /// with messages).
    pub n_chains: usize,
    /// Number of ECUs on the backbone bus.
    pub n_ecus: usize,
    /// RNG seed (instances are fully reproducible).
    pub seed: u64,
    /// Target per-ECU utilization of the planted placement (0..1).
    pub utilization: f64,
    /// Fraction of tasks whose permission set is restricted to 2 ECUs.
    pub restricted_fraction: f64,
    /// Number of redundant pairs (mutually separated tasks).
    pub redundant_pairs: usize,
    /// `true` for a TDMA token ring backbone, `false` for CAN.
    pub token_ring: bool,
    /// Deadline slack multiplier over the planted response time (≥ 1.0;
    /// smaller = tighter instance).
    pub deadline_slack: f64,
}

impl GenParams {
    /// The flagship 43-task / 12-chain / 8-ECU instance standing in for the
    /// \[5\] benchmark of Table 1.
    pub fn tindell43() -> GenParams {
        GenParams {
            name: "tindell43".into(),
            n_tasks: 43,
            n_chains: 12,
            n_ecus: 8,
            seed: 0x7161_4311,
            utilization: 0.45,
            restricted_fraction: 0.25,
            redundant_pairs: 3,
            token_ring: true,
            deadline_slack: 1.35,
        }
    }
}

/// A generated benchmark instance.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Instance name.
    pub name: String,
    /// The platform.
    pub arch: Architecture,
    /// The application.
    pub tasks: TaskSet,
    /// A feasibility witness (the planted allocation).
    pub planted: Allocation,
}

/// Period pool in 50 µs ticks: 5 ms … 50 ms.
const PERIODS: [Time; 5] = [100, 200, 400, 500, 1000];

/// Generates a planted-feasible instance from `params`.
pub fn generate(params: &GenParams) -> Workload {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let n = params.n_tasks;
    let ecus = params.n_ecus;

    // --- architecture skeleton (slots filled in later) -------------------
    let mut arch = Architecture::new();
    for i in 0..ecus {
        arch.push_ecu(Ecu::new(format!("ecu{i}")));
    }
    let members: Vec<EcuId> = (0..ecus).map(|i| EcuId(i as u32)).collect();

    // --- tasks: periods, chains, planted placement -----------------------
    // Chains first: each chain is 2–4 tasks sharing a period.
    let mut chain_of: Vec<Option<usize>> = vec![None; n];
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut next_task = 0usize;
    for _ in 0..params.n_chains {
        let len = rng.gen_range(2..=4usize).min(n.saturating_sub(next_task));
        if len < 2 {
            break;
        }
        let chain: Vec<usize> = (next_task..next_task + len).collect();
        for &t in &chain {
            chain_of[t] = Some(chains.len());
        }
        next_task += len;
        chains.push(chain);
    }

    let periods: Vec<Time> = {
        let mut p = vec![0; n];
        for chain in &chains {
            let period = PERIODS[rng.gen_range(0..PERIODS.len())];
            for &t in chain {
                p[t] = period;
            }
        }
        for v in p.iter_mut() {
            if *v == 0 {
                *v = PERIODS[rng.gen_range(0..PERIODS.len())];
            }
        }
        p
    };

    // Planted placement: round-robin over ECUs, so chains spread out and
    // generate bus traffic.
    let planted_ecu: Vec<EcuId> = (0..n).map(|i| EcuId((i % ecus) as u32)).collect();

    // WCETs: share the utilization budget of each ECU among its tasks.
    let mut tasks_per_ecu = vec![0usize; ecus];
    for p in &planted_ecu {
        tasks_per_ecu[p.index()] += 1;
    }
    let mut wcets: Vec<Time> = Vec::with_capacity(n);
    for i in 0..n {
        let share = params.utilization / tasks_per_ecu[planted_ecu[i].index()] as f64;
        let jitter = rng.gen_range(0.6..1.3);
        let c = ((periods[i] as f64) * share * jitter).round().max(1.0) as Time;
        wcets.push(c.min(periods[i]));
    }

    // Permission sets: planted ECU plus extras; heterogeneous WCETs.
    let mut allowed: Vec<Vec<(EcuId, Time)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut set = vec![(planted_ecu[i], wcets[i])];
        let restricted = rng.gen_bool(params.restricted_fraction);
        let extra = if restricted {
            1
        } else {
            rng.gen_range(2..=ecus.saturating_sub(1).max(2))
        };
        let mut others: Vec<EcuId> = members
            .iter()
            .copied()
            .filter(|&p| p != planted_ecu[i])
            .collect();
        for _ in 0..extra.min(others.len()) {
            let idx = rng.gen_range(0..others.len());
            let p = others.swap_remove(idx);
            let factor = rng.gen_range(0.8..1.6);
            let c = ((wcets[i] as f64) * factor).round().max(1.0) as Time;
            set.push((p, c.min(periods[i])));
        }
        allowed.push(set);
    }

    // --- messages along chains -------------------------------------------
    // Sized 2–8 bytes; deadline = period / 2 (generous but bounded).
    struct MsgSpec {
        from: usize,
        to: usize,
        size: u32,
        deadline: Time,
    }
    let mut msgs: Vec<MsgSpec> = Vec::new();
    for chain in &chains {
        for w in chain.windows(2) {
            msgs.push(MsgSpec {
                from: w[0],
                to: w[1],
                size: rng.gen_range(2..=8),
                deadline: periods[w[0]] / 2,
            });
        }
    }

    // --- medium parameters -----------------------------------------------
    let frame_overhead: Time = 1;
    let per_byte: Time = 1;
    let frame_time = |size: u32| frame_overhead + per_byte * size as Time;

    // Calibrate bus load: random sizes can push the single backbone toward
    // Σ ρ/t ≈ 1, which no slot table or deadline relaxation can repair
    // (TDMA additionally loses the other ECUs' slots each round). Scale
    // payload sizes until the planted-placement bus utilization is bounded.
    const BUS_UTIL_TARGET: f64 = 0.5;
    for _ in 0..4 {
        let util: f64 = msgs
            .iter()
            .filter(|m| planted_ecu[m.from] != planted_ecu[m.to])
            .map(|m| frame_time(m.size) as f64 / periods[m.from] as f64)
            .sum();
        if util <= BUS_UTIL_TARGET {
            break;
        }
        let scale = BUS_UTIL_TARGET / util;
        for m in msgs.iter_mut() {
            m.size = ((m.size as f64 * scale).floor() as u32).max(1);
        }
    }

    // Slot table: each ECU's slot must fit its largest planted frame AND
    // carry its aggregate frame load — eq. (3)'s blocking term leaves an
    // ECU only the λ/Λ share of the bus, so `λ_p/Λ ≳ Σ ρ/t` is required
    // for its message backlog to drain. Proportional fitting converges
    // because the calibrated total load (with headroom) is below 1.
    let medium = if params.token_ring {
        let mut slots: Vec<Time> = vec![1; ecus];
        let mut load = vec![0f64; ecus];
        for m in &msgs {
            if planted_ecu[m.from] == planted_ecu[m.to] {
                continue;
            }
            let e = planted_ecu[m.from].index();
            slots[e] = slots[e].max(frame_time(m.size));
            load[e] += frame_time(m.size) as f64 / periods[m.from] as f64;
        }
        for _ in 0..32 {
            let round: Time = slots.iter().sum();
            let mut changed = false;
            for e in 0..ecus {
                let need = (SLOT_HEADROOM * load[e] * round as f64).ceil() as Time;
                if slots[e] < need {
                    slots[e] = need;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Medium::tdma("ring0", members.clone(), slots, frame_overhead, per_byte)
    } else {
        Medium::priority("can0", members.clone(), frame_overhead, per_byte)
    };
    let medium_id = arch.push_medium(medium);

    // --- build the task set with placeholder deadlines --------------------
    let mut ts = TaskSet::new();
    for i in 0..n {
        let mut task = Task::new(
            format!("t{i}"),
            periods[i],
            periods[i], // tightened below
            allowed[i].clone(),
        );
        for m in msgs.iter().filter(|m| m.from == i) {
            task = task.sends(TaskId(m.to as u32), m.size, m.deadline);
        }
        ts.push(task);
    }

    // Redundant pairs: separate tasks planted on different ECUs.
    let mut placed_pairs = 0usize;
    let mut tries = 0;
    while placed_pairs < params.redundant_pairs && tries < 200 {
        tries += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || planted_ecu[a] == planted_ecu[b] {
            continue;
        }
        let (a_id, b_id) = (TaskId(a as u32), TaskId(b as u32));
        if ts.task(a_id).separation.contains(&b_id) {
            continue;
        }
        ts.tasks[a].separation.insert(b_id);
        ts.tasks[b].separation.insert(a_id);
        placed_pairs += 1;
    }

    // --- planted allocation ------------------------------------------------
    let mut planted = Allocation::skeleton(&ts);
    planted.placement = planted_ecu.clone();
    for (mid, m) in ts.messages() {
        let s = planted.ecu_of(mid.sender);
        let r = planted.ecu_of(m.to);
        *planted_route(&mut planted, mid) = if s == r {
            MessageRoute::colocated()
        } else {
            MessageRoute::single_hop(medium_id, m.deadline)
        };
    }

    // --- tighten deadlines around the planted response times ---------------
    // Deadline-monotonic priorities shift as deadlines shrink, so iterate a
    // couple of times until the deadline assignment is a fixed point.
    for _ in 0..4 {
        planted.priorities = optalloc_model::deadline_monotonic(&ts);
        let rts = optalloc_analysis::all_task_response_times(&ts, &planted, false);
        let mut changed = false;
        for (i, rt) in rts.iter().enumerate().take(n) {
            let r = rt.unwrap_or(ts.tasks[i].period);
            let d =
                (((r as f64) * params.deadline_slack).ceil() as Time).clamp(1, ts.tasks[i].period);
            if ts.tasks[i].deadline != d {
                ts.tasks[i].deadline = d;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    planted.priorities = optalloc_model::deadline_monotonic(&ts);

    // Relax message deadlines/budgets until the planted witness validates
    // (TDMA blocking can exceed the naive period/2 budgets).
    relax_message_deadlines(&mut arch, &mut ts, &mut planted);

    Workload {
        name: params.name.clone(),
        arch,
        tasks: ts,
        planted,
    }
}

/// Grows message deadlines, per-hop budgets and TDMA slots monotonically
/// until the planted allocation passes full validation (or a generous cap
/// of 4×period is hit). Growing a deadline only lowers that message's own
/// priority, and slots only ever widen, so the iteration is monotone and
/// terminates.
pub(crate) fn relax_message_deadlines(
    arch: &mut Architecture,
    tasks: &mut TaskSet,
    planted: &mut Allocation,
) {
    let config = optalloc_analysis::AnalysisConfig::default();
    for _ in 0..60 {
        let report = optalloc_analysis::validate(arch, tasks, planted, &config);
        if report.is_feasible() {
            return;
        }
        // Repair every unschedulable (message, medium) pair on two axes:
        // widen the forwarding ECU's TDMA slot (its bandwidth share λ/Λ
        // must cover the ECU's aggregate frame load — max-frame sizing
        // alone does not guarantee that), and grow the local deadline
        // budget. Then re-derive each end-to-end deadline from its budgets
        // plus gateway service.
        for v in &report.violations {
            if let optalloc_analysis::Violation::MessageUnschedulable(mid, k) = v {
                widen_slot_on_deficit(arch, tasks, planted, *mid, *k);
                let cap = 4 * tasks.task(mid.sender).period;
                let route = planted.route_mut(*mid);
                let pos = route
                    .media
                    .iter()
                    .position(|m| m == k)
                    .expect("violation refers to a route medium");
                let d = route.local_deadlines[pos];
                route.local_deadlines[pos] = (d + d / 2 + 4).min(cap);
            }
        }
        for ti in 0..tasks.tasks.len() {
            let period = tasks.tasks[ti].period;
            for mi in 0..tasks.tasks[ti].messages.len() {
                let route = &planted.routes[ti][mi];
                let service =
                    config.gateway_service * (route.media.len() as Time).saturating_sub(1);
                let budget: Time = route.local_deadlines.iter().sum();
                let needed = budget + service;
                let m = &mut tasks.tasks[ti].messages[mi];
                if m.deadline < needed {
                    m.deadline = needed.min(4 * period).max(m.deadline);
                }
            }
        }
        planted.priorities = optalloc_model::deadline_monotonic(tasks);
    }
    // Leave the final (possibly still infeasible) state; callers assert
    // feasibility in tests.
}

fn planted_route(alloc: &mut Allocation, msg: MsgId) -> &mut MessageRoute {
    alloc.route_mut(msg)
}

/// Bandwidth headroom factor for TDMA slot sizing: a slot gets 1.5× the
/// share its ECU's frame load strictly requires, absorbing ceiling effects
/// and release jitter in eq. (3).
const SLOT_HEADROOM: f64 = 1.5;

/// If `msg`'s trouble on TDMA medium `k` is a *bandwidth* deficit — the
/// forwarding ECU's slot share `λ/Λ` is below its aggregate frame load —
/// widen that slot to the headroom target. Latency-only deficits are left
/// to deadline growth: widening slots inflates the round for everyone, so
/// it must only happen when throughput genuinely falls short.
fn widen_slot_on_deficit(
    arch: &mut Architecture,
    tasks: &TaskSet,
    planted: &Allocation,
    msg: MsgId,
    k: optalloc_model::MediumId,
) {
    let Some(fw) = optalloc_analysis::forwarder(arch, planted, msg, k) else {
        return;
    };
    let (idx, load) = {
        let med = arch.medium(k);
        if !med.is_tdma() {
            return;
        }
        let Some(idx) = med.members.iter().position(|&p| p == fw) else {
            return;
        };
        let mut load = 0f64;
        for (omid, om) in tasks.messages() {
            if planted.route(omid).media.contains(&k)
                && optalloc_analysis::forwarder(arch, planted, omid, k) == Some(fw)
            {
                load +=
                    med.transmission_time(om.size) as f64 / tasks.task(omid.sender).period as f64;
            }
        }
        (idx, load)
    };
    if let MediumKind::Tdma { slots } = &mut arch.media[k.index()].kind {
        let round: Time = slots.iter().sum();
        let need = (SLOT_HEADROOM * load * round as f64).ceil() as Time;
        if slots[idx] < need {
            slots[idx] = need;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_analysis::{validate, AnalysisConfig};

    #[test]
    fn tindell43_shape() {
        let w = generate(&GenParams::tindell43());
        assert_eq!(w.tasks.len(), 43);
        assert_eq!(w.arch.num_ecus(), 8);
        assert_eq!(w.arch.num_media(), 1);
        assert!(w.arch.medium(optalloc_model::MediumId(0)).is_tdma());
        let n_msgs = w.tasks.messages().count();
        assert!(
            n_msgs >= 12,
            "expected at least 12 chain messages, got {n_msgs}"
        );
        assert!(w.tasks.validate().is_ok());
        assert!(w.arch.validate().is_ok());
    }

    #[test]
    fn planted_allocation_is_feasible() {
        let w = generate(&GenParams::tindell43());
        let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
        assert!(
            report.is_feasible(),
            "planted allocation violates: {:?}",
            report.violations
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenParams::tindell43());
        let b = generate(&GenParams::tindell43());
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.arch, b.arch);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn can_variant_plants_feasibly() {
        let params = GenParams {
            token_ring: false,
            name: "tindell43-can".into(),
            ..GenParams::tindell43()
        };
        let w = generate(&params);
        let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
        assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn varying_sizes_plant_feasibly() {
        for (tasks, ecus) in [(7, 3), (12, 4), (20, 8), (30, 8)] {
            let params = GenParams {
                name: format!("t{tasks}e{ecus}"),
                n_tasks: tasks,
                n_chains: tasks / 3,
                n_ecus: ecus,
                ..GenParams::tindell43()
            };
            let w = generate(&params);
            let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
            assert!(
                report.is_feasible(),
                "{tasks}/{ecus}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn redundant_pairs_are_mutual() {
        let w = generate(&GenParams::tindell43());
        for (tid, t) in w.tasks.iter() {
            for &other in &t.separation {
                assert!(w.tasks.task(other).separation.contains(&tid));
            }
        }
    }
}
