//! DRAT-style proof logging and a self-contained forward proof checker.
//!
//! With [`SolverConfig::proof`](crate::SolverConfig::proof) enabled the
//! solver records every input constraint and every derived clause into an
//! in-memory [`ProofLog`]. The log is an *extended* DRAT trace: besides
//! clause additions and deletions it carries the original inputs (clauses
//! and normalized pseudo-Boolean constraints), so the trace is fully
//! self-contained — a checker needs no separate copy of the formula, and
//! incremental solving (constraints added between SOLVE calls) falls out
//! naturally from the chronological interleaving.
//!
//! [`check_proof`] is the matching forward checker: a miniature unit
//! propagation engine — two watched literals per clause, counter
//! propagation for PB constraints, **no decisions, no learning** — that
//! verifies each added clause by RUP (reverse unit propagation: assert
//! the clause's negation, propagate, expect a conflict). Because learned
//! clauses may be derived through PB reasons, propagation over the PB
//! inputs is part of the RUP closure; plain clause-only DRAT would
//! reject such steps.
//!
//! Deletions only ever weaken the formula the checker reasons from, so an
//! unmatched deletion is ignored (counted, not rejected) — the standard
//! lenient forward-checking semantics, sound for UNSAT certification.

use crate::types::{LBool, Lit};
use std::collections::HashMap;
use std::io::{self, Write};

/// One step of an extended DRAT trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An input clause, exactly as handed to the solver (pre-simplification).
    InputClause(Vec<Lit>),
    /// An input pseudo-Boolean constraint in normalized `≥` form:
    /// `Σ coefs[i]·lits[i] ≥ bound` with positive coefficients.
    InputPb {
        /// Distinct literals, paired with `coefs`.
        lits: Vec<Lit>,
        /// Positive coefficients.
        coefs: Vec<u64>,
        /// Right-hand side of the `≥`.
        bound: u64,
    },
    /// A derived clause; must pass the RUP check against everything before it.
    Add(Vec<Lit>),
    /// A clause removed from the active set (clause-DB reduction or
    /// preprocessing). Always sound to ignore.
    Delete(Vec<Lit>),
}

/// Chronological record of a solver run, suitable for [`check_proof`].
#[derive(Clone, Debug, Default)]
pub struct ProofLog {
    steps: Vec<ProofStep>,
}

impl ProofLog {
    /// An empty trace.
    pub fn new() -> ProofLog {
        ProofLog::default()
    }

    /// Records an input clause.
    pub fn input_clause(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::InputClause(lits.to_vec()));
    }

    /// Records an input PB constraint `Σ coefs[i]·lits[i] ≥ bound`.
    pub fn input_pb(&mut self, lits: &[Lit], coefs: &[u64], bound: u64) {
        self.steps.push(ProofStep::InputPb {
            lits: lits.to_vec(),
            coefs: coefs.to_vec(),
            bound,
        });
    }

    /// Records a derived clause (the empty slice is the empty clause).
    pub fn add(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Add(lits.to_vec()));
    }

    /// Records a clause deletion.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.to_vec()));
    }

    /// The recorded steps, in order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Writes the trace as text. Derived clauses and deletions use plain
    /// DRAT syntax (`<lits> 0` / `d <lits> 0`, DIMACS numbering); the
    /// self-containment extensions are prefixed lines: `i <lits> 0` for
    /// input clauses and `p <coef> <lit> ... >= <bound> 0` for PB inputs.
    pub fn write_drat<W: Write>(&self, w: &mut W) -> io::Result<()> {
        fn dimacs(l: Lit) -> i64 {
            let v = l.var().index() as i64 + 1;
            if l.is_positive() {
                v
            } else {
                -v
            }
        }
        for step in &self.steps {
            match step {
                ProofStep::InputClause(lits) => {
                    write!(w, "i")?;
                    for &l in lits {
                        write!(w, " {}", dimacs(l))?;
                    }
                    writeln!(w, " 0")?;
                }
                ProofStep::InputPb { lits, coefs, bound } => {
                    write!(w, "p")?;
                    for (&l, &c) in lits.iter().zip(coefs) {
                        write!(w, " {} {}", c, dimacs(l))?;
                    }
                    writeln!(w, " >= {bound} 0")?;
                }
                ProofStep::Add(lits) => {
                    let mut first = true;
                    for &l in lits {
                        if first {
                            write!(w, "{}", dimacs(l))?;
                            first = false;
                        } else {
                            write!(w, " {}", dimacs(l))?;
                        }
                    }
                    if first {
                        writeln!(w, "0")?;
                    } else {
                        writeln!(w, " 0")?;
                    }
                }
                ProofStep::Delete(lits) => {
                    write!(w, "d")?;
                    for &l in lits {
                        write!(w, " {}", dimacs(l))?;
                    }
                    writeln!(w, " 0")?;
                }
            }
        }
        Ok(())
    }
}

/// Why a proof was rejected.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// The clause added at `step` is not RUP with respect to everything
    /// logged before it.
    RupFailed {
        /// Index of the offending step in the trace.
        step: usize,
        /// The clause that failed its RUP check.
        clause: Vec<Lit>,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::RupFailed { step, clause } => {
                write!(f, "step {step}: clause of {} lits failed RUP", clause.len())
            }
        }
    }
}

/// Result of a successful [`check_proof`] run.
#[derive(Clone, Debug, Default)]
pub struct CheckedProof {
    /// Total steps processed.
    pub steps: usize,
    /// Input clauses + PB constraints.
    pub inputs: usize,
    /// Derived clauses that passed their RUP check.
    pub adds_verified: usize,
    /// Deletions applied.
    pub deletions: usize,
    /// Deletions with no matching active clause (ignored, not an error).
    pub ignored_deletions: usize,
    unsat: bool,
    derived: std::collections::HashSet<Vec<Lit>>,
    input_set: std::collections::HashSet<Vec<Lit>>,
}

impl CheckedProof {
    /// True when the trace establishes unsatisfiability of its inputs
    /// (a verified empty clause, or a root-level propagation conflict).
    pub fn proves_unsat(&self) -> bool {
        self.unsat
    }

    /// True when `lits` (as a set) follows from the trace: it is among the
    /// verified derived clauses, it is an input clause (inputs hold
    /// trivially), or the whole formula was proved unsatisfiable (which
    /// subsumes any clause).
    pub fn proves_clause(&self, lits: &[Lit]) -> bool {
        if self.unsat {
            return true;
        }
        let key = canon(lits);
        self.derived.contains(&key) || self.input_set.contains(&key)
    }
}

/// Sorted, deduplicated literal set — the canonical clause key.
fn canon(lits: &[Lit]) -> Vec<Lit> {
    let mut v = lits.to_vec();
    v.sort_by_key(|l| l.index());
    v.dedup();
    v
}

fn is_tautology(sorted: &[Lit]) -> bool {
    sorted.windows(2).any(|w| w[0] == !w[1])
}

struct Pb {
    lits: Vec<Lit>,
    coefs: Vec<u64>,
    /// `Σ_{lᵢ not false} coefs[i] − bound` under the current assignment.
    slack: i64,
    max_coef: u64,
}

/// The checker's propagation engine: clauses under two-watched-literal
/// propagation, PB constraints with counter (slack) propagation, a single
/// trail shared by the persistent root level and the temporary RUP probes.
///
/// The watch invariant leans on two facts of forward checking: the root
/// trail never retracts (so a permanently false watch is repaired — or
/// turned into a root unit/conflict — the moment it becomes false), and
/// RUP probes always undo their assignments before the next install (so
/// probe-local watch moves can only ever land watches on lits that are
/// undef again after the undo, which keeps them valid).
#[derive(Default)]
struct Engine {
    assigns: Vec<LBool>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Active clauses; slots 0 and 1 hold the two watched literals
    /// (clauses of length < 2 never propagate through watches: empty is a
    /// root conflict, units are folded into the persistent trail).
    clauses: Vec<Option<Vec<Lit>>>,
    /// `lit.index()` → ids of clauses currently watching that literal;
    /// visited when the literal becomes false. Stale ids (deleted
    /// clauses, moved watches) are purged lazily.
    watches: Vec<Vec<u32>>,
    /// Canonical lits → active clause ids, for deletion matching.
    by_lits: HashMap<Vec<Lit>, Vec<u32>>,
    pbs: Vec<Pb>,
    /// `lit.index()` → `(pb id, coef)` for constraints containing that
    /// literal; consulted when the literal becomes false.
    pb_occ: Vec<Vec<(u32, u64)>>,
    /// A conflict in the persistent (root) closure: the inputs are UNSAT.
    root_conflict: bool,
}

impl Engine {
    fn ensure(&mut self, lits: &[Lit]) {
        let max = lits
            .iter()
            .map(|l| l.var().index())
            .max()
            .map_or(0, |m| m + 1);
        if self.assigns.len() < max {
            self.assigns.resize(max, LBool::Undef);
            self.watches.resize(max * 2, Vec::new());
            self.pb_occ.resize(max * 2, Vec::new());
        }
    }

    fn value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn assign(&mut self, l: Lit) {
        self.assigns[l.var().index()] = LBool::from_bool(l.is_positive());
        self.trail.push(l);
        for &(pi, c) in &self.pb_occ[(!l).index()] {
            self.pbs[pi as usize].slack -= c as i64;
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().unwrap();
            self.assigns[l.var().index()] = LBool::Undef;
            for &(pi, c) in &self.pb_occ[(!l).index()] {
                self.pbs[pi as usize].slack += c as i64;
            }
        }
        self.qhead = mark;
    }

    /// Unit propagation to fixpoint from the current queue head.
    /// Returns `true` on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fw = !p; // the literal that just became false
            let neg = fw.index();
            // Clauses watching ¬p: satisfied, re-watched, unit, or conflicting.
            let mut i = 0;
            while i < self.watches[neg].len() {
                let cid = self.watches[neg][i] as usize;
                let Some(mut cl) = self.clauses[cid].take() else {
                    self.watches[neg].swap_remove(i);
                    continue;
                };
                if cl[0] == fw {
                    cl.swap(0, 1);
                }
                if self.value(cl[0]) == LBool::True {
                    self.clauses[cid] = Some(cl);
                    i += 1;
                    continue;
                }
                // Look for a non-false literal to take over the watch.
                let repl = (2..cl.len()).find(|&k| self.value(cl[k]) != LBool::False);
                if let Some(k) = repl {
                    cl.swap(1, k);
                    let nw = cl[1];
                    self.clauses[cid] = Some(cl);
                    self.watches[neg].swap_remove(i);
                    self.watches[nw.index()].push(cid as u32);
                    continue;
                }
                // Every other literal is false: unit on cl[0], or conflict.
                let w0 = cl[0];
                self.clauses[cid] = Some(cl);
                match self.value(w0) {
                    LBool::False => return true,
                    LBool::Undef => self.assign(w0),
                    LBool::True => {}
                }
                i += 1;
            }
            // PB constraints in which ¬p just became false: the slack was
            // already decremented by `assign`; here we detect violation and
            // force literals whose coefficient exceeds the remaining slack.
            let mut j = 0;
            while j < self.pb_occ[neg].len() {
                let pi = self.pb_occ[neg][j].0 as usize;
                j += 1;
                let (slack, max_coef) = (self.pbs[pi].slack, self.pbs[pi].max_coef);
                if slack < 0 {
                    return true;
                }
                if (max_coef as i64) > slack {
                    let forced: Vec<Lit> = {
                        let pb = &self.pbs[pi];
                        pb.lits
                            .iter()
                            .zip(&pb.coefs)
                            .filter(|&(&l, &c)| (c as i64) > slack && self.value(l) == LBool::Undef)
                            .map(|(&l, _)| l)
                            .collect()
                    };
                    for l in forced {
                        self.assign(l);
                    }
                }
            }
        }
        false
    }

    /// Installs a clause into the persistent formula and propagates any
    /// consequence at root level.
    ///
    /// Watch choice: two non-false literals when the clause has them (the
    /// only case where it can still propagate); otherwise it is satisfied,
    /// unit or conflicting at root — root facts are permanent, so such a
    /// clause never propagates again and any two slots do as watches.
    fn install_clause(&mut self, lits: &[Lit]) {
        let mut cl = canon(lits);
        if is_tautology(&cl) {
            return; // never propagates; keeping it would only bloat watch lists
        }
        self.ensure(&cl);
        if cl.is_empty() {
            self.root_conflict = true;
            return;
        }
        let key = cl.clone();
        // Root-level status, and the best two watch candidates: prefer
        // non-false literals (undef before true keeps `unit` meaningful).
        let mut sat = false;
        let mut n = 0usize;
        let mut unit = None;
        for k in 0..cl.len() {
            match self.value(cl[k]) {
                LBool::True => sat = true,
                LBool::Undef => unit = Some(cl[k]),
                LBool::False => continue,
            }
            if n < 2 {
                cl.swap(n, k);
            }
            n += 1;
        }
        let id = self.clauses.len() as u32;
        if cl.len() >= 2 {
            self.watches[cl[0].index()].push(id);
            self.watches[cl[1].index()].push(id);
        }
        self.by_lits.entry(key).or_default().push(id);
        self.clauses.push(Some(cl));
        if self.root_conflict || sat || n > 1 {
            return;
        }
        match unit {
            None => self.root_conflict = true,
            Some(l) => {
                self.assign(l);
                if self.propagate() {
                    self.root_conflict = true;
                }
            }
        }
    }

    fn install_pb(&mut self, lits: &[Lit], coefs: &[u64], bound: u64) {
        self.ensure(lits);
        let id = self.pbs.len() as u32;
        let total: i64 = coefs.iter().map(|&c| c as i64).sum();
        let mut slack = total - bound as i64;
        for (&l, &c) in lits.iter().zip(coefs) {
            self.pb_occ[l.index()].push((id, c));
            if self.value(l) == LBool::False {
                slack -= c as i64;
            }
        }
        let max_coef = coefs.iter().copied().max().unwrap_or(0);
        self.pbs.push(Pb {
            lits: lits.to_vec(),
            coefs: coefs.to_vec(),
            slack,
            max_coef,
        });
        if self.root_conflict {
            return;
        }
        if slack < 0 {
            self.root_conflict = true;
            return;
        }
        if (max_coef as i64) > slack {
            let forced: Vec<Lit> = {
                let pb = &self.pbs[id as usize];
                pb.lits
                    .iter()
                    .zip(&pb.coefs)
                    .filter(|&(&l, &c)| (c as i64) > pb.slack && self.value(l) == LBool::Undef)
                    .map(|(&l, _)| l)
                    .collect()
            };
            for l in forced {
                self.assign(l);
            }
            if self.propagate() {
                self.root_conflict = true;
            }
        }
    }

    /// RUP check: assert the clause's negation, propagate, expect conflict.
    /// Leaves the persistent state untouched.
    fn rup(&mut self, cl: &[Lit]) -> bool {
        if self.root_conflict {
            return true;
        }
        self.ensure(cl);
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in cl {
            match self.value(l) {
                // The clause is satisfied at root — implied outright.
                LBool::True => {
                    conflict = true;
                    break;
                }
                LBool::False => {}
                LBool::Undef => self.assign(!l),
            }
        }
        if !conflict {
            conflict = self.propagate();
        }
        self.undo_to(mark);
        conflict
    }

    /// Deletes one active clause matching `lits`; false when none does.
    fn delete(&mut self, lits: &[Lit]) -> bool {
        let key = canon(lits);
        if let Some(ids) = self.by_lits.get_mut(&key) {
            if let Some(id) = ids.pop() {
                if ids.is_empty() {
                    self.by_lits.remove(&key);
                }
                self.clauses[id as usize] = None;
                return true;
            }
        }
        false
    }
}

/// Forward-checks an extended DRAT trace. Every `Add` step must be RUP
/// with respect to the inputs, the earlier verified additions, and the
/// not-yet-deleted clauses; on success the returned [`CheckedProof`]
/// answers which clauses the trace proves.
pub fn check_proof(log: &ProofLog) -> Result<CheckedProof, CheckError> {
    let mut eng = Engine::default();
    let mut out = CheckedProof {
        steps: log.len(),
        ..CheckedProof::default()
    };
    for (i, step) in log.steps().iter().enumerate() {
        match step {
            ProofStep::InputClause(lits) => {
                eng.install_clause(lits);
                out.input_set.insert(canon(lits));
                out.inputs += 1;
            }
            ProofStep::InputPb { lits, coefs, bound } => {
                eng.install_pb(lits, coefs, *bound);
                out.inputs += 1;
            }
            ProofStep::Add(lits) => {
                let key = canon(lits);
                if !is_tautology(&key) && !eng.rup(&key) {
                    return Err(CheckError::RupFailed {
                        step: i,
                        clause: lits.clone(),
                    });
                }
                eng.install_clause(lits);
                out.derived.insert(key);
                out.adds_verified += 1;
            }
            ProofStep::Delete(lits) => {
                if eng.delete(lits) {
                    out.deletions += 1;
                } else {
                    out.ignored_deletions += 1;
                }
            }
        }
    }
    out.unsat = eng.root_conflict;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn l(i: i32) -> Lit {
        let v = Var::from_index((i.unsigned_abs() - 1) as usize);
        if i > 0 {
            v.positive()
        } else {
            v.negative()
        }
    }

    fn cl(ls: &[i32]) -> Vec<Lit> {
        ls.iter().map(|&i| l(i)).collect()
    }

    #[test]
    fn accepts_valid_rup_chain() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ⊢ (x2) by RUP; then (¬x2) makes it UNSAT.
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1, 2]));
        log.input_clause(&cl(&[-1, 2]));
        log.add(&cl(&[2]));
        log.input_clause(&cl(&[-2]));
        log.add(&[]);
        let checked = check_proof(&log).expect("valid proof");
        assert!(checked.proves_unsat());
        assert!(checked.proves_clause(&cl(&[2])));
        assert_eq!(checked.inputs, 3);
        assert_eq!(checked.adds_verified, 2);
    }

    #[test]
    fn rejects_non_rup_addition() {
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1, 2]));
        log.add(&cl(&[1])); // not implied by UP
        match check_proof(&log) {
            Err(CheckError::RupFailed { step, .. }) => assert_eq!(step, 1),
            other => panic!("expected RUP failure, got {other:?}"),
        }
    }

    #[test]
    fn deletion_weakens_the_formula() {
        // After deleting (¬x1 ∨ x2), the unit (x2) is no longer RUP.
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1, 2]));
        log.input_clause(&cl(&[-1, 2]));
        log.delete(&cl(&[-1, 2]));
        log.add(&cl(&[2]));
        assert!(check_proof(&log).is_err());
    }

    #[test]
    fn unknown_deletion_is_ignored() {
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1, 2]));
        log.delete(&cl(&[3, 4]));
        let checked = check_proof(&log).expect("lenient deletes");
        assert_eq!(checked.deletions, 0);
        assert_eq!(checked.ignored_deletions, 1);
    }

    #[test]
    fn pb_counter_propagation_in_rup() {
        // 2·x1 + 1·x2 + 1·x3 ≥ 3 forces x1 once either x2 or x3 is false:
        // the clause (x2 ∨ x1) is RUP only through the PB constraint.
        let mut log = ProofLog::new();
        log.input_pb(&cl(&[1, 2, 3]), &[2, 1, 1], 3);
        log.add(&cl(&[2, 1]));
        let checked = check_proof(&log).expect("PB-aware RUP");
        assert!(checked.proves_clause(&cl(&[1, 2])));
        assert!(!checked.proves_unsat());
    }

    #[test]
    fn pb_violation_detected() {
        // x1 + x2 ≥ 2 with ¬x1 as input is UNSAT at root.
        let mut log = ProofLog::new();
        log.input_pb(&cl(&[1, 2]), &[1, 1], 2);
        log.input_clause(&cl(&[-1]));
        let checked = check_proof(&log).expect("checks");
        assert!(checked.proves_unsat());
    }

    #[test]
    fn unsat_subsumes_any_claim() {
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1]));
        log.input_clause(&cl(&[-1]));
        let checked = check_proof(&log).expect("checks");
        assert!(checked.proves_unsat());
        assert!(checked.proves_clause(&cl(&[7])));
    }

    #[test]
    fn satisfied_at_root_is_implied() {
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1]));
        log.add(&cl(&[1, 2]));
        let checked = check_proof(&log).expect("checks");
        assert!(checked.proves_clause(&cl(&[1, 2])));
    }

    #[test]
    fn drat_text_roundtrip_format() {
        let mut log = ProofLog::new();
        log.input_clause(&cl(&[1, -2]));
        log.input_pb(&cl(&[1, 2]), &[2, 1], 2);
        log.add(&cl(&[1]));
        log.delete(&cl(&[1, -2]));
        log.add(&[]);
        let mut buf = Vec::new();
        log.write_drat(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["i 1 -2 0", "p 2 1 1 2 >= 2 0", "1 0", "d 1 -2 0", "0"]
        );
    }
}
