//! Occurrence-list simplification: subsumption, self-subsuming resolution
//! and bounded variable elimination (BVE), with a freeze/melt protocol and
//! model reconstruction.
//!
//! The pass runs at level 0, over the *input* clauses only (learned clauses
//! are never scanned — they are implied, so every rewrite here stays sound
//! with them attached). It executes at the first `solve` call and, when
//! [`SolverConfig::elim`](super::SolverConfig::elim) is on, again as bounded
//! inprocessing once enough new input clauses accumulated between
//! incremental `solve` calls.
//!
//! **Variable elimination** is SatELite-style clause distribution: a
//! variable `x` with positive occurrences `P` and negative occurrences `N`
//! is removed by replacing `P ∪ N` with all non-tautological resolvents
//! `P × N`, accepted only under the standard growth cutoff (no more
//! resolvents than clauses removed). Pure literals fall out as the `N = ∅`
//! special case. The removed clauses are pushed onto a *reconstruction
//! stack*; [`Solver::extend_model`](super::Solver) replays that stack
//! backwards after every `Sat` verdict, so callers always see a model of the
//! original formula.
//!
//! **Freeze/melt**: frozen variables are never eliminated. Assumption
//! variables are frozen transiently for the duration of a pass, shared-base
//! variables (`share_var_limit` under an exchange) automatically, and upper
//! layers pin anything they will reference later (guard literals, cost-bound
//! bits) via [`Solver::freeze_var`](super::Solver). Referencing an
//! eliminated variable anyway — in a new constraint or an assumption — is
//! not an error: the melt-on-reuse path restores it transparently,
//! re-attaching its stored clauses (cascading to anything they mention).
//!
//! **Proof logging**: every resolvent is RUP at the moment it is created —
//! asserting its negation makes one parent propagate the pivot and the
//! other parent conflict — so it is logged as a plain DRAT addition.
//! Clauses removed by *elimination* are deliberately **not** logged as
//! deletions: the forward checker keeps propagating through them, which
//! only strengthens later RUP checks, and restoration then needs no
//! re-derivation. (Clauses removed because they are subsumed or satisfied
//! keep their deletion steps, exactly as before.)

use super::*;

/// Re-run the simplification pass (under `config.elim`) once this many new
/// input clauses arrived since the last pass.
const INPROCESS_MIN_NEW: u64 = 64;
/// Growth cutoff: a variable is eliminated only if the number of kept
/// resolvents does not exceed the number of removed clauses by more than
/// this.
const ELIM_GROW: usize = 0;
/// Variables occurring in more than this many clauses (both polarities
/// summed) are never elimination candidates.
const ELIM_MAX_OCC: usize = 40;
/// A resolvent longer than this aborts its variable's elimination.
const ELIM_MAX_RES_LEN: usize = 32;
/// Forward-subsumption step budget: first pass / inprocessing re-pass.
const SUBSUME_BUDGET_FIRST: u64 = 20_000_000;
const SUBSUME_BUDGET_INPROCESS: u64 = 5_000_000;
/// Resolution-pair budget for elimination: first pass / inprocessing.
const ELIM_BUDGET_FIRST: u64 = 2_000_000;
const ELIM_BUDGET_INPROCESS: u64 = 500_000;
/// Subsumers longer than this are not probed against the occurrence lists.
const SUBSUMER_MAX_LEN: usize = 16;

/// Deliberate soundness-fault hook used by the testkit acceptance campaign
/// (`OPTALLOC_TESTKIT_INJECT=skip-elim-restore`): when set, `extend_model`
/// skips the replay of one reconstruction group, silently corrupting the
/// extended model. The paranoid model check must detect the corruption and
/// the shrinker must minimize it. Read once per process; the fuzz binary is
/// spawned with the variable already set.
fn inject_skip_elim_restore() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("OPTALLOC_TESTKIT_INJECT").as_deref() == Ok("skip-elim-restore")
    })
}

/// One eliminated variable: the clauses that mentioned it, captured at
/// elimination time. Replayed backwards for model extension, forwards (per
/// variable) by the melt-on-reuse restore path.
pub(crate) struct ElimGroup {
    pub(crate) var: Var,
    /// Every clause containing the variable when it was eliminated, in
    /// working-copy (root-simplified, sorted) form. Emptied on restore.
    pub(crate) clauses: Vec<Vec<Lit>>,
}

/// Working copy of one live input clause during a pass.
struct Pc {
    /// Arena home; `None` for a resolvent created this pass (allocated at
    /// write-back if it survives).
    cref: Option<ClauseRef>,
    lits: Vec<Lit>,
    sig: u64,
    dead: bool,
    /// Dead because its variable was eliminated: the clause moved to the
    /// reconstruction stack and its proof-trace copy is *kept*.
    elim_dead: bool,
    changed: bool,
    /// Last working copy logged into the proof trace. Strengthened copies
    /// are logged the moment they are derived — while both resolution
    /// parents are still present, so the step is RUP — never at write-back,
    /// where the parents may already have been deleted (a subsumer can
    /// itself be strengthened or subsumed).
    logged: Option<Vec<Lit>>,
}

fn signature(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() & 63))
}

/// Returns `Some(None)` if `a ⊆ b`, `Some(Some(l))` if `a∖{l} ⊆ b` with
/// `¬l ∈ b` (self-subsumption resolving on `l`), `None` otherwise. Both
/// inputs are sorted.
fn sub_check(a: &[Lit], b: &[Lit]) -> Option<Option<Lit>> {
    let mut flipped = None;
    for &l in a {
        if b.binary_search(&l).is_ok() {
            continue;
        }
        if flipped.is_none() && b.binary_search(&!l).is_ok() {
            flipped = Some(l);
            continue;
        }
        return None;
    }
    Some(flipped)
}

/// The indices in `occ[l]` whose clause is live and still contains `l`
/// (strengthening leaves stale entries behind).
fn live_occs(pcs: &[Pc], occ: &[Vec<u32>], l: Lit) -> Vec<u32> {
    occ[l.index()]
        .iter()
        .copied()
        .filter(|&i| {
            let p = &pcs[i as usize];
            !p.dead && p.lits.binary_search(&l).is_ok()
        })
        .collect()
}

/// The resolvent of sorted clauses `c` (containing `v`) and `d` (containing
/// `¬v`) on `v`; `None` if it is a tautology.
fn resolve(c: &[Lit], d: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(c.len() + d.len() - 2);
    out.extend(c.iter().copied().filter(|l| l.var() != v));
    out.extend(d.iter().copied().filter(|l| l.var() != v));
    out.sort_unstable();
    out.dedup();
    // Sorted literal order keeps complements adjacent.
    for w in out.windows(2) {
        if w[1] == !w[0] {
            return None;
        }
    }
    Some(out)
}

impl Solver {
    // ------------------------------------------------------------------
    // Freeze/melt API
    // ------------------------------------------------------------------

    /// Protects a variable from elimination. If it was already eliminated,
    /// it is restored first (stored clauses re-attached, model extension no
    /// longer responsible for it). Upper layers freeze anything they will
    /// keep referencing: assumption variables are frozen automatically for
    /// the duration of each pass, shared-base variables (under an exchange)
    /// permanently.
    pub fn freeze_var(&mut self, v: Var) {
        if self.eliminated[v.index()] {
            self.backtrack_to(0);
            self.restore_vars_in(&[v.positive()]);
        }
        self.frozen[v.index()] = true;
    }

    /// Lifts a [`freeze_var`](Self::freeze_var) mark; the variable becomes
    /// an elimination candidate again at the next pass.
    pub fn melt_var(&mut self, v: Var) {
        self.frozen[v.index()] = false;
    }

    /// Whether the variable is currently frozen.
    pub fn is_frozen(&self, v: Var) -> bool {
        self.frozen[v.index()]
    }

    /// Whether the variable is currently eliminated (it occurs in no
    /// attached input clause; its model value comes from reconstruction).
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Number of currently eliminated variables — the live depth of the
    /// model-reconstruction stack.
    pub fn num_eliminated(&self) -> usize {
        self.stats.elim_stack_depth as usize
    }

    // ------------------------------------------------------------------
    // Melt-on-reuse restoration
    // ------------------------------------------------------------------

    /// Restores every eliminated variable appearing in `lits`, cascading
    /// through stored clauses that mention further eliminated variables.
    /// Must run at level 0. Stored clauses re-attach simplified against the
    /// current root assignment; since elimination never removed them from
    /// the proof trace, no proof step is needed (derived units log
    /// themselves through `pp_assign_unit`).
    pub(crate) fn restore_vars_in(&mut self, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        let mut work: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|v| self.eliminated[v.index()])
            .collect();
        while let Some(v) = work.pop() {
            if !self.eliminated[v.index()] {
                continue;
            }
            let gi = self.elim_pos[v.index()] as usize;
            self.eliminated[v.index()] = false;
            self.elim_pos[v.index()] = u32::MAX;
            self.stats.elim_restored += 1;
            self.stats.elim_stack_depth -= 1;
            if !self.order.contains(v) {
                self.order.insert(v, &self.activity);
            }
            let clauses = std::mem::take(&mut self.elim_stack[gi].clauses);
            for cl in clauses {
                // A stored clause may mention variables eliminated *after*
                // this one (their own stored clauses cannot mention `v`, so
                // the cascade terminates).
                for &l in &cl {
                    if self.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
                self.reinstall_clause(&cl);
                if !self.ok {
                    return;
                }
            }
        }
    }

    /// Re-attaches one stored clause, simplified against the current root
    /// assignment.
    fn reinstall_clause(&mut self, cl: &[Lit]) {
        let mut lits: Vec<Lit> = Vec::with_capacity(cl.len());
        for &l in cl {
            match self.value_lit(l) {
                LBool::True => return, // already satisfied at root
                LBool::False => {}
                LBool::Undef => lits.push(l),
            }
        }
        match lits.len() {
            0 => self.set_unsat(),
            1 => {
                let _ = self.pp_assign_unit(lits[0]);
            }
            _ => {
                let cref = self.db.alloc(&lits, false);
                self.attach(cref);
            }
        }
    }

    // ------------------------------------------------------------------
    // Model reconstruction
    // ------------------------------------------------------------------

    /// Extends the model snapshot over eliminated variables by replaying
    /// the reconstruction stack backwards: `x` becomes true iff some stored
    /// clause contains `x` positively and has no other true literal — then
    /// every stored `¬x` clause is satisfied too (its resolvent with the
    /// forcing clause is in the live formula, hence satisfied, or was a
    /// tautology, which satisfies it directly).
    pub(crate) fn extend_model(&mut self) {
        if self.stats.elim_stack_depth == 0 {
            return;
        }
        // Fault-injection hook for the testkit acceptance campaign: skip
        // the replay of one live group, leaving that variable's model value
        // at its saved phase. The paranoid model check must catch this.
        let mut skip_one = inject_skip_elim_restore();
        for gi in (0..self.elim_stack.len()).rev() {
            let var = self.elim_stack[gi].var;
            // Skip restored groups and stale entries of re-eliminated vars.
            if self.elim_pos[var.index()] != gi as u32 {
                continue;
            }
            if skip_one {
                skip_one = false;
                continue;
            }
            let pos = var.positive();
            let mut value = false;
            'clauses: for cl in &self.elim_stack[gi].clauses {
                let mut has_pos = false;
                for &l in cl {
                    if l.var() == var {
                        has_pos |= l == pos;
                        continue;
                    }
                    if self.model[l.var().index()] == l.is_positive() {
                        continue 'clauses; // satisfied without `var`
                    }
                }
                if has_pos {
                    value = true;
                    break;
                }
            }
            self.model[var.index()] = value;
        }
    }

    /// Panics unless the current model satisfies every clause on the live
    /// reconstruction stack — the complement of `debug_check_model` for the
    /// part of the original formula that elimination removed.
    pub(crate) fn debug_check_elim_stack(&self) {
        for (gi, g) in self.elim_stack.iter().enumerate() {
            if self.elim_pos[g.var.index()] != gi as u32 {
                continue;
            }
            for cl in &g.clauses {
                assert!(
                    cl.iter().any(|&l| self.model_value(l)),
                    "eliminated clause {:?} violated by the extended model",
                    cl
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // The simplification pass
    // ------------------------------------------------------------------

    /// Whether enough new input clauses arrived to warrant an inprocessing
    /// re-pass (only under `config.elim`; with elimination off the pass is
    /// one-shot, preserving the legacy engine's exact behavior).
    pub(crate) fn inprocess_due(&self) -> bool {
        self.config.elim && self.inputs_since_simplify >= INPROCESS_MIN_NEW
    }

    /// The occurrence-list simplification pass, at level 0: removes clauses
    /// satisfied by root facts, strips falsified literals, deletes duplicate
    /// and subsumed clauses, applies self-subsuming resolution (if
    /// `C∖{l} ⊆ D` and `¬l ∈ D`, the resolvent strengthens `D` to `D∖{¬l}`),
    /// and — under `config.elim` — eliminates variables by bounded clause
    /// distribution, alternating with subsumption until a fixpoint or
    /// budget exhaustion.
    ///
    /// Every step is equivalence-preserving over the *live* formula w.r.t.
    /// the original one extended through the reconstruction stack, so
    /// assumptions (frozen for the pass), guard literals added later,
    /// incremental reuse, and the cross-solver clause exchange (shared-base
    /// variables frozen) all stay sound. PB constraints are left untouched
    /// and any variable occurring in one is ineligible. Iteration follows
    /// arena/occurrence order, so the pass is deterministic.
    pub(crate) fn simplify(&mut self, assumptions: &[Lit], first: bool) {
        debug_assert_eq!(self.decision_level(), 0);
        self.clear_root_reasons();
        self.inputs_since_simplify = 0;

        // Working copies of the live input clauses, simplified against the
        // current root assignment.
        let crefs: Vec<ClauseRef> = self
            .db
            .iter_refs()
            .filter(|&c| !self.db.is_learnt(c))
            .collect();
        let mut pcs: Vec<Pc> = Vec::with_capacity(crefs.len());
        let mut doomed: Vec<ClauseRef> = Vec::new();
        for cref in crefs {
            let orig_len = self.db.len(cref);
            let mut lits: Vec<Lit> = Vec::with_capacity(orig_len);
            let mut satisfied = false;
            for i in 0..orig_len {
                let l = self.db.lits(cref)[i];
                match self.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => lits.push(l),
                }
            }
            if satisfied {
                doomed.push(cref);
                self.stats.pp_removed += 1;
                continue;
            }
            match lits.len() {
                // All-false clauses would have conflicted during propagation.
                0 => {
                    self.set_unsat();
                    return;
                }
                1 => {
                    doomed.push(cref);
                    if !self.pp_assign_unit(lits[0]) {
                        return;
                    }
                    continue;
                }
                _ => {}
            }
            lits.sort_unstable();
            let sig = signature(&lits);
            let changed = lits.len() != orig_len;
            pcs.push(Pc {
                cref: Some(cref),
                lits,
                sig,
                dead: false,
                elim_dead: false,
                changed,
                logged: None,
            });
        }

        // Occurrence lists over the copies, by literal index.
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for (i, pc) in pcs.iter().enumerate() {
            for &l in &pc.lits {
                occ[l.index()].push(i as u32);
            }
        }

        // Assumption variables are frozen for the duration of the pass.
        let mut assumed = vec![false; self.num_vars()];
        for a in assumptions {
            assumed[a.var().index()] = true;
        }

        let mut budget: u64 = if first {
            SUBSUME_BUDGET_FIRST
        } else {
            SUBSUME_BUDGET_INPROCESS
        };
        let mut elim_budget: u64 = match (self.config.elim, first) {
            (false, _) => 0,
            (true, true) => ELIM_BUDGET_FIRST,
            (true, false) => ELIM_BUDGET_INPROCESS,
        };

        // Forward subsumption with the short clauses as subsumers, cheapest
        // occurrence list first, bounded by a global step budget; then (with
        // elimination on) a variable-elimination sweep whose resolvents feed
        // back into the subsumption worklist, until a fixpoint.
        let mut order: Vec<u32> = (0..pcs.len() as u32).collect();
        order.sort_by_key(|&i| (pcs[i as usize].lits.len(), i));
        let mut worklist: std::collections::VecDeque<u32> = order.into();
        loop {
            while let Some(ci) = worklist.pop_front() {
                if budget == 0 {
                    break;
                }
                let (c_lits, c_sig) = {
                    let c = &pcs[ci as usize];
                    if c.dead || c.lits.len() > SUBSUMER_MAX_LEN {
                        continue;
                    }
                    (c.lits.clone(), c.sig)
                };
                // Candidates must contain the subsumer's least-occurring
                // literal in either polarity.
                let best = c_lits
                    .iter()
                    .min_by_key(|l| occ[l.index()].len() + occ[(!**l).index()].len())
                    .copied()
                    .unwrap();
                for side in [best, !best] {
                    for &dj in &occ[side.index()] {
                        if dj == ci || pcs[dj as usize].dead {
                            continue;
                        }
                        let d = &pcs[dj as usize];
                        if d.lits.len() < c_lits.len() || c_sig & !d.sig != 0 {
                            continue;
                        }
                        budget = budget.saturating_sub(d.lits.len() as u64);
                        match sub_check(&c_lits, &d.lits) {
                            None => {}
                            Some(None) => {
                                pcs[dj as usize].dead = true;
                                self.stats.pp_removed += 1;
                            }
                            Some(Some(l)) => {
                                {
                                    let d = &mut pcs[dj as usize];
                                    d.lits.retain(|&x| x != !l);
                                    d.sig = signature(&d.lits);
                                    d.changed = true;
                                }
                                self.stats.pp_strengthened += 1;
                                // Proof: the new copy is the resolvent of
                                // the current copies of `d` and the
                                // subsumer, both present right now (their
                                // originals are only deleted at write-back,
                                // their own strengthened copies were logged
                                // when derived) — so it is RUP *here*. The
                                // superseded copy is deleted after: it is
                                // subsumed by the new one, so the deletion
                                // never weakens propagation.
                                if self.config.proof {
                                    let new = pcs[dj as usize].lits.clone();
                                    let prev = pcs[dj as usize].logged.replace(new.clone());
                                    self.proof_log().add(&new);
                                    if let Some(prev) = prev {
                                        self.proof_log().delete(&prev);
                                    }
                                }
                                if pcs[dj as usize].lits.len() == 1 {
                                    let unit = pcs[dj as usize].lits[0];
                                    pcs[dj as usize].dead = true;
                                    if !self.pp_assign_unit(unit) {
                                        return;
                                    }
                                } else {
                                    // A stronger clause subsumes more;
                                    // requeue.
                                    worklist.push_back(dj);
                                }
                            }
                        }
                        if budget == 0 {
                            break;
                        }
                    }
                    if budget == 0 {
                        break;
                    }
                }
            }
            if elim_budget == 0 {
                break;
            }
            let eliminated = self.elim_sweep(
                &mut pcs,
                &mut occ,
                &mut worklist,
                &assumed,
                &mut elim_budget,
            );
            if !self.ok {
                return;
            }
            if eliminated == 0 {
                break;
            }
        }

        // Write results back into the solver: drop dead clauses, re-allocate
        // strengthened ones (watches must move to the new literal set), and
        // allocate surviving resolvents.
        for cref in doomed {
            if self.config.proof {
                let old = self.db.lits(cref).to_vec();
                self.proof_log().delete(&old);
            }
            self.detach(cref);
            self.db.delete(cref);
        }
        for pc in &pcs {
            if pc.elim_dead {
                // Moved to the reconstruction stack. The proof-trace copy is
                // kept on purpose: the checker propagating through it only
                // strengthens later RUP checks, and restoration needs no
                // re-derivation.
                if let Some(cref) = pc.cref {
                    self.detach(cref);
                    self.db.delete(cref);
                }
                continue;
            }
            if pc.dead {
                if self.config.proof {
                    if let Some(cref) = pc.cref {
                        let old = self.db.lits(cref).to_vec();
                        self.proof_log().delete(&old);
                    }
                    // Drop the logged working copy too (units stay: they
                    // carry a root fact).
                    if let Some(lg) = &pc.logged {
                        if lg.len() > 1 {
                            let lg = lg.clone();
                            self.proof_log().delete(&lg);
                        }
                    }
                }
                if let Some(cref) = pc.cref {
                    self.detach(cref);
                    self.db.delete(cref);
                }
                continue;
            }
            if !pc.changed && pc.cref.is_some() {
                continue;
            }
            // Re-simplify against the final root assignment so the new
            // clause's watched literals are all unassigned.
            let mut lits: Vec<Lit> = Vec::with_capacity(pc.lits.len());
            let mut satisfied = false;
            for &l in &pc.lits {
                match self.value_lit(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => lits.push(l),
                }
            }
            // Proof: strengthened copies and resolvents were already logged
            // when derived. Here only root-simplification remains: the final
            // clause is the last copy minus root-false literals, which is
            // RUP through the persistent root facts. Log it before deleting
            // the original and the superseded copy.
            if self.config.proof {
                let already = pc.logged.as_deref() == Some(&lits[..]);
                if !satisfied && !lits.is_empty() && !already {
                    let new = lits.clone();
                    self.proof_log().add(&new);
                }
                if let Some(cref) = pc.cref {
                    let old = self.db.lits(cref).to_vec();
                    self.proof_log().delete(&old);
                }
                if let Some(lg) = &pc.logged {
                    if !already {
                        let lg = lg.clone();
                        self.proof_log().delete(&lg);
                    }
                }
            }
            if let Some(cref) = pc.cref {
                self.detach(cref);
                self.db.delete(cref);
            }
            if satisfied {
                continue;
            }
            match lits.len() {
                0 => {
                    self.set_unsat();
                    return;
                }
                1 => {
                    if !self.pp_assign_unit(lits[0]) {
                        return;
                    }
                }
                _ => {
                    let cref = self.db.alloc(&lits, false);
                    self.attach(cref);
                }
            }
        }
        // Propagation during the pass may have set clause reasons on root
        // facts; clear them again so none points at a deleted clause.
        self.clear_root_reasons();
        if self.db.wasted * 4 > self.db.arena_len() {
            self.garbage_collect();
        }
    }

    /// One bounded-variable-elimination sweep over the working copies.
    /// Returns the number of variables eliminated; resolvents are appended
    /// to `pcs`/`occ` and queued on the subsumption worklist.
    fn elim_sweep(
        &mut self,
        pcs: &mut Vec<Pc>,
        occ: &mut [Vec<u32>],
        worklist: &mut std::collections::VecDeque<u32>,
        assumed: &[bool],
        elim_budget: &mut u64,
    ) -> usize {
        // Shared-base variables stay, so exchanged clauses (which the share
        // filter confines below the limit) never meet an eliminated var.
        let shared_limit = if self.config.exchange.is_some() {
            self.config.share_var_limit
        } else {
            0
        };
        // Cheapest variables first (fewest occurrences — stale entries make
        // this an upper bound, good enough for ordering), ties by index.
        let mut cands: Vec<(usize, usize)> = Vec::new();
        for (vi, &asm) in assumed.iter().enumerate() {
            let v = Var::from_index(vi);
            if self.frozen[vi] || self.eliminated[vi] || asm || vi < shared_limit {
                continue;
            }
            if self.value_var(v) != LBool::Undef {
                continue;
            }
            // PB constraints are not distributed over; any PB occurrence
            // disqualifies.
            if !self.pb_occs[v.positive().index()].is_empty()
                || !self.pb_occs[v.negative().index()].is_empty()
            {
                continue;
            }
            let est = occ[v.positive().index()].len() + occ[v.negative().index()].len();
            if est == 0 || est > ELIM_MAX_OCC {
                continue;
            }
            cands.push((est, vi));
        }
        cands.sort_unstable();

        let mut eliminated_now = 0usize;
        for (_, vi) in cands {
            if *elim_budget == 0 {
                break;
            }
            let v = Var::from_index(vi);
            // A unit derived earlier in this sweep may have assigned it.
            if self.value_var(v) != LBool::Undef || self.eliminated[vi] {
                continue;
            }
            let pos = live_occs(pcs, occ, v.positive());
            let neg = live_occs(pcs, occ, v.negative());
            let total = pos.len() + neg.len();
            if total == 0 || total > ELIM_MAX_OCC {
                continue;
            }
            *elim_budget = elim_budget.saturating_sub((pos.len() * neg.len()) as u64 + 1);
            // Distribute: all non-tautological resolvents, under the growth
            // cutoff. An empty polarity (pure literal) yields none.
            let limit = total + ELIM_GROW;
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut aborted = false;
            'pairs: for &ci in &pos {
                for &dj in &neg {
                    if let Some(r) = resolve(&pcs[ci as usize].lits, &pcs[dj as usize].lits, v) {
                        if r.len() > ELIM_MAX_RES_LEN || resolvents.len() == limit {
                            aborted = true;
                            break 'pairs;
                        }
                        resolvents.push(r);
                    }
                }
            }
            if aborted {
                continue;
            }
            // Commit: clauses move to the reconstruction stack, resolvents
            // join the working set.
            let mut group = ElimGroup {
                var: v,
                clauses: Vec::with_capacity(total),
            };
            for &i in pos.iter().chain(neg.iter()) {
                let pc = &mut pcs[i as usize];
                pc.dead = true;
                pc.elim_dead = true;
                group.clauses.push(pc.lits.clone());
                self.stats.elim_clauses += 1;
            }
            self.stats.elim_vars += 1;
            self.stats.elim_stack_depth += 1;
            self.eliminated[vi] = true;
            self.elim_pos[vi] = self.elim_stack.len() as u32;
            self.elim_stack.push(group);
            eliminated_now += 1;
            for r in resolvents {
                self.stats.elim_resolvents += 1;
                // Proof: RUP while both parents are in the trace — assert
                // the negation, one parent becomes unit on the pivot, the
                // other conflicts.
                if r.len() == 1 {
                    // `pp_assign_unit` logs the addition itself.
                    if !self.pp_assign_unit(r[0]) {
                        return eliminated_now;
                    }
                    continue;
                }
                if self.config.proof {
                    self.proof_log().add(&r);
                }
                let sig = signature(&r);
                let idx = pcs.len() as u32;
                for &l in &r {
                    occ[l.index()].push(idx);
                }
                worklist.push_back(idx);
                pcs.push(Pc {
                    cref: None,
                    lits: r.clone(),
                    sig,
                    dead: false,
                    elim_dead: false,
                    changed: false,
                    logged: Some(r),
                });
            }
        }
        eliminated_now
    }
}
