//! Path closures on hierarchical topologies (paper §4, Figure 1).
//!
//! The media of an architecture form a graph whose nodes are media and whose
//! arcs are the gateway ECUs linking them. A **path closure** `ph ∈ PH` is
//! the set of all non-empty prefixes of one maximal simple path through that
//! graph; choosing a closure plus one of its prefixes for a message fixes
//! both *which* media the message crosses and *in which order* — the order
//! being what the jitter propagation of §4 needs.
//!
//! The closure `ph₀ = {""}` (the empty path) models co-located
//! sender/receiver pairs that need no bus at all.

use crate::allocation::MessageRoute;
use crate::architecture::Architecture;
use crate::ids::{EcuId, MediumId};
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// An ordered sequence of media a message crosses (possibly empty).
pub type Path = Vec<MediumId>;

/// All prefixes of one maximal simple path, shortest first.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathClosure {
    /// The sub-paths, ordered by length; `prefixes.last()` is the maximal
    /// path `h̃`. Empty for `ph₀`.
    pub prefixes: Vec<Path>,
}

impl PathClosure {
    /// The empty closure `ph₀` (co-located communication).
    pub fn empty() -> PathClosure {
        PathClosure {
            prefixes: vec![Vec::new()],
        }
    }

    /// `true` for `ph₀`.
    pub fn is_empty_path(&self) -> bool {
        self.prefixes.len() == 1 && self.prefixes[0].is_empty()
    }

    /// The longest path `h̃` of the closure.
    pub fn longest(&self) -> &Path {
        self.prefixes.last().expect("closures are never empty")
    }

    /// The starting medium, if any.
    pub fn start(&self) -> Option<MediumId> {
        self.longest().first().copied()
    }
}

/// Computes the set `PH` of path closures of the architecture: `ph₀` plus
/// one closure per maximal simple path in the media graph.
pub fn path_closures(arch: &Architecture) -> Vec<PathClosure> {
    let n = arch.num_media();
    // Adjacency by shared gateway.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, row) in adj.iter_mut().enumerate() {
        for b in 0..n {
            if a != b
                && arch
                    .gateway_between(MediumId(a as u32), MediumId(b as u32))
                    .is_some()
            {
                row.push(b);
            }
        }
    }

    let mut closures = vec![PathClosure::empty()];
    let mut stack: Vec<usize> = Vec::new();
    let mut on_path = vec![false; n];

    // DFS over simple paths; emit a closure at each maximal path.
    fn dfs(
        node: usize,
        adj: &[Vec<usize>],
        stack: &mut Vec<usize>,
        on_path: &mut [bool],
        out: &mut Vec<PathClosure>,
    ) {
        stack.push(node);
        on_path[node] = true;
        let mut extended = false;
        for &next in &adj[node] {
            if !on_path[next] {
                extended = true;
                dfs(next, adj, stack, on_path, out);
            }
        }
        if !extended {
            let maximal: Path = stack.iter().map(|&i| MediumId(i as u32)).collect();
            let prefixes = (1..=maximal.len()).map(|l| maximal[..l].to_vec()).collect();
            out.push(PathClosure { prefixes });
        }
        on_path[node] = false;
        stack.pop();
    }

    for start in 0..n {
        dfs(start, &adj, &mut stack, &mut on_path, &mut closures);
    }
    closures
}

/// The paper's `v(h)` endpoint check: the sender must sit on the first
/// medium and the receiver on the last, and for multi-hop paths neither may
/// sit on the gateway shared with the adjacent medium (gateways forward,
/// they do not originate/terminate on both sides).
pub fn endpoints_valid(
    arch: &Architecture,
    path: &[MediumId],
    sender: EcuId,
    receiver: EcuId,
) -> bool {
    match path {
        [] => sender == receiver,
        [k] => arch.medium(*k).connects(sender) && arch.medium(*k).connects(receiver),
        _ => {
            let first = path[0];
            let second = path[1];
            let last = path[path.len() - 1];
            let before_last = path[path.len() - 2];
            let sender_ok = arch.medium(first).connects(sender)
                && arch.gateway_between(first, second) != Some(sender);
            let receiver_ok = arch.medium(last).connects(receiver)
                && arch.gateway_between(last, before_last) != Some(receiver);
            sender_ok && receiver_ok
        }
    }
}

/// `true` if consecutive media on the path are linked by gateways (i.e. the
/// path exists in the topology).
pub fn path_exists(arch: &Architecture, path: &[MediumId]) -> bool {
    path.windows(2)
        .all(|w| arch.gateway_between(w[0], w[1]).is_some())
}

/// The gateway ECUs a message crosses along `path`, in order.
pub fn gateways_along(arch: &Architecture, path: &[MediumId]) -> Vec<EcuId> {
    path.windows(2)
        .map(|w| {
            arch.gateway_between(w[0], w[1])
                .expect("path must exist in the topology")
        })
        .collect()
}

/// Shortest media path between two ECUs (BFS over the media graph), with
/// the deadline budget split evenly across hops.
pub fn shortest_route(arch: &Architecture, from: EcuId, to: EcuId, deadline: Time) -> MessageRoute {
    if from == to {
        return MessageRoute::colocated();
    }
    if let Some(k) = arch.shared_medium(from, to) {
        return MessageRoute::single_hop(k, deadline);
    }
    // BFS over media, starting from media containing `from`.
    let n = arch.num_media();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for k in arch.media_of(from) {
        seen[k.index()] = true;
        queue.push_back(k.index());
    }
    while let Some(cur) = queue.pop_front() {
        if arch.medium(MediumId(cur as u32)).connects(to) {
            // Reconstruct.
            let mut path = vec![MediumId(cur as u32)];
            let mut node = cur;
            while let Some(p) = prev[node] {
                path.push(MediumId(p as u32));
                node = p;
            }
            path.reverse();
            let hops = path.len() as Time;
            let per_hop = (deadline / hops).max(1);
            let local = path.iter().map(|_| per_hop).collect();
            return MessageRoute {
                media: path,
                local_deadlines: local,
            };
        }
        for next in 0..n {
            if !seen[next]
                && arch
                    .gateway_between(MediumId(cur as u32), MediumId(next as u32))
                    .is_some()
            {
                seen[next] = true;
                prev[next] = Some(cur);
                queue.push_back(next);
            }
        }
    }
    // Unreachable pair; return a colocated stub (validation will flag it).
    MessageRoute::colocated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architecture::Ecu;
    use crate::medium::Medium;

    /// The exact topology of the paper's Figure 1:
    /// k1 = {p1,p2,p3}, k2 = {p2,p4}, k3 = {p3,p5}.
    fn figure1() -> Architecture {
        let mut a = Architecture::new();
        // Index 0 is unused so ECU numbers match the figure.
        for i in 0..=5 {
            a.push_ecu(Ecu::new(format!("p{i}")));
        }
        a.push_medium(Medium::priority(
            "k1",
            vec![EcuId(1), EcuId(2), EcuId(3)],
            1,
            1,
        ));
        a.push_medium(Medium::priority("k2", vec![EcuId(2), EcuId(4)], 1, 1));
        a.push_medium(Medium::priority("k3", vec![EcuId(3), EcuId(5)], 1, 1));
        a
    }

    fn path(ids: &[u32]) -> Path {
        ids.iter().map(|&i| MediumId(i)).collect()
    }

    #[test]
    fn figure1_closures_match_the_paper() {
        let arch = figure1();
        assert_eq!(arch.validate(), Ok(()));
        let phs = path_closures(&arch);
        // Media indices: k1 = 0, k2 = 1, k3 = 2.
        let expect = |prefixes: Vec<Path>| PathClosure { prefixes };
        let expected = vec![
            PathClosure::empty(),                                      // ph0
            expect(vec![path(&[0]), path(&[0, 1])]),                   // ph1: "k1","k1k2"
            expect(vec![path(&[0]), path(&[0, 2])]),                   // ph2: "k1","k1k3"
            expect(vec![path(&[1]), path(&[1, 0]), path(&[1, 0, 2])]), // ph3
            expect(vec![path(&[2]), path(&[2, 0]), path(&[2, 0, 1])]), // ph4
        ];
        assert_eq!(phs, expected);
    }

    #[test]
    fn isolated_medium_yields_singleton_closure() {
        let mut a = Architecture::new();
        for i in 0..4 {
            a.push_ecu(Ecu::new(format!("p{i}")));
        }
        a.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
        a.push_medium(Medium::priority("k1", vec![EcuId(2), EcuId(3)], 1, 1));
        let phs = path_closures(&a);
        assert_eq!(phs.len(), 3); // ph0 + one per isolated medium
        assert_eq!(phs[1].prefixes, vec![path(&[0])]);
        assert_eq!(phs[2].prefixes, vec![path(&[1])]);
    }

    #[test]
    fn endpoint_validity_single_medium() {
        let arch = figure1();
        // Both endpoints on k1.
        assert!(endpoints_valid(&arch, &path(&[0]), EcuId(1), EcuId(3)));
        // Receiver not on k1.
        assert!(!endpoints_valid(&arch, &path(&[0]), EcuId(1), EcuId(4)));
    }

    #[test]
    fn endpoint_validity_multi_hop_excludes_gateways() {
        let arch = figure1();
        // k1→k2 via gateway p2: sender may be p1/p3 (not p2), receiver p4.
        let p = path(&[0, 1]);
        assert!(endpoints_valid(&arch, &p, EcuId(1), EcuId(4)));
        assert!(endpoints_valid(&arch, &p, EcuId(3), EcuId(4)));
        assert!(!endpoints_valid(&arch, &p, EcuId(2), EcuId(4))); // sender is the gateway
        assert!(!endpoints_valid(&arch, &p, EcuId(1), EcuId(2))); // receiver is the gateway
    }

    #[test]
    fn empty_path_needs_colocation() {
        let arch = figure1();
        assert!(endpoints_valid(&arch, &[], EcuId(1), EcuId(1)));
        assert!(!endpoints_valid(&arch, &[], EcuId(1), EcuId(2)));
    }

    #[test]
    fn path_existence_and_gateways() {
        let arch = figure1();
        assert!(path_exists(&arch, &path(&[1, 0, 2])));
        assert!(!path_exists(&arch, &path(&[1, 2])));
        assert_eq!(
            gateways_along(&arch, &path(&[1, 0, 2])),
            vec![EcuId(2), EcuId(3)]
        );
    }

    #[test]
    fn closure_accessors() {
        let arch = figure1();
        let phs = path_closures(&arch);
        assert!(phs[0].is_empty_path());
        assert_eq!(phs[0].start(), None);
        assert_eq!(phs[3].start(), Some(MediumId(1)));
        assert_eq!(phs[3].longest(), &path(&[1, 0, 2]));
    }
}
