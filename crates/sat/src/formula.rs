//! Standalone formula container with DIMACS CNF and OPB (pseudo-Boolean
//! competition format) parsing/printing.
//!
//! This gives the solver a life outside the allocation pipeline: the
//! `optalloc-sat` binary reads either format, decides satisfiability, and
//! optionally minimizes an OPB objective — handy for debugging encodings
//! (both the blaster and the tables can dump instances) and for comparing
//! against other solvers.

use crate::pb::{PbOp, PbTerm};
use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::fmt::Write as _;

/// A PB constraint as parsed: terms of `(coefficient, signed 1-based
/// var)`, the relational operator, and the right-hand side.
pub type ParsedPb = (Vec<(i64, i64)>, PbOp, i64);

/// A parsed problem: clauses plus PB constraints plus an optional
/// minimization objective (OPB `min:` line).
#[derive(Debug, Default, Clone)]
pub struct Formula {
    /// Number of variables (1-based in the file formats, 0-based here).
    pub n_vars: usize,
    /// Clauses as signed 1-based indices (DIMACS convention).
    pub clauses: Vec<Vec<i64>>,
    /// PB constraints: terms of `(coefficient, signed 1-based var)`.
    pub pbs: Vec<ParsedPb>,
    /// Optional objective to minimize: terms `(coefficient, signed var)`.
    pub minimize: Option<Vec<(i64, i64)>>,
}

/// Parse errors with 1-based line numbers.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl Formula {
    /// Parses DIMACS CNF (`p cnf <vars> <clauses>` header, clauses
    /// terminated by `0`, `c` comment lines).
    pub fn parse_dimacs(input: &str) -> Result<Formula, ParseError> {
        let mut f = Formula::default();
        let mut current: Vec<i64> = Vec::new();
        let mut seen_header = false;
        for (ln, raw) in input.lines().enumerate() {
            let line = raw.trim();
            let n = ln + 1;
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(err(n, "malformed problem line (want `p cnf V C`)"));
                }
                f.n_vars = parts[1].parse().map_err(|_| err(n, "bad variable count"))?;
                seen_header = true;
                continue;
            }
            if !seen_header {
                return Err(err(n, "clause before `p cnf` header"));
            }
            for tok in line.split_whitespace() {
                let v: i64 = tok
                    .parse()
                    .map_err(|_| err(n, format!("bad literal {tok}")))?;
                if v == 0 {
                    f.clauses.push(std::mem::take(&mut current));
                } else {
                    if v.unsigned_abs() as usize > f.n_vars {
                        return Err(err(n, format!("literal {v} exceeds declared variables")));
                    }
                    current.push(v);
                }
            }
        }
        if !current.is_empty() {
            return Err(err(
                input.lines().count(),
                "last clause not terminated by 0",
            ));
        }
        Ok(f)
    }

    /// Parses the OPB linear pseudo-Boolean format:
    ///
    /// ```text
    /// * #variable= 4 #constraint= 2
    /// min: +1 x1 +2 x2 ;
    /// +3 x1 -2 x2 +1 x3 >= 2 ;
    /// +1 x1 +1 x4 = 1 ;
    /// ```
    ///
    /// Negated literals are written `~x3`.
    pub fn parse_opb(input: &str) -> Result<Formula, ParseError> {
        let mut f = Formula::default();
        for (ln, raw) in input.lines().enumerate() {
            let n = ln + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('*') {
                // Optional size hints in the standard comment header.
                if let Some(idx) = header.find("#variable=") {
                    let rest = header[idx + "#variable=".len()..].trim_start();
                    let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                    if let Ok(v) = num.parse() {
                        f.n_vars = v;
                    }
                }
                continue;
            }
            let line = line
                .strip_suffix(';')
                .map(str::trim)
                .ok_or_else(|| err(n, "missing terminating `;`"))?;

            let (is_min, body) = match line.strip_prefix("min:") {
                Some(rest) => (true, rest.trim()),
                None => (false, line),
            };

            // Split off the relational operator for constraints.
            let (terms_str, op, bound) = if is_min {
                (body, None, 0)
            } else {
                let (op_txt, op) = if body.contains(">=") {
                    (">=", PbOp::Ge)
                } else if body.contains("<=") {
                    ("<=", PbOp::Le)
                } else if body.contains('=') {
                    ("=", PbOp::Eq)
                } else {
                    return Err(err(n, "constraint without relational operator"));
                };
                let mut split = body.splitn(2, op_txt);
                let lhs = split.next().unwrap().trim();
                let rhs = split.next().ok_or_else(|| err(n, "missing bound"))?.trim();
                let bound: i64 = rhs
                    .parse()
                    .map_err(|_| err(n, format!("bad bound `{rhs}`")))?;
                (lhs, Some(op), bound)
            };

            // Terms: `<coef> <lit>` pairs, lit = `x<k>` or `~x<k>`.
            let mut terms: Vec<(i64, i64)> = Vec::new();
            let toks: Vec<&str> = terms_str.split_whitespace().collect();
            if !toks.len().is_multiple_of(2) {
                return Err(err(n, "odd number of tokens in term list"));
            }
            for pair in toks.chunks(2) {
                let coef: i64 = pair[0]
                    .parse()
                    .map_err(|_| err(n, format!("bad coefficient `{}`", pair[0])))?;
                let (neg, name) = match pair[1].strip_prefix('~') {
                    Some(rest) => (true, rest),
                    None => (false, pair[1]),
                };
                let idx: i64 = name
                    .strip_prefix('x')
                    .and_then(|d| d.parse().ok())
                    .ok_or_else(|| err(n, format!("bad literal `{}`", pair[1])))?;
                if idx < 1 {
                    return Err(err(n, "variable indices start at 1"));
                }
                f.n_vars = f.n_vars.max(idx as usize);
                terms.push((coef, if neg { -idx } else { idx }));
            }

            if is_min {
                f.minimize = Some(terms);
            } else {
                f.pbs.push((terms, op.unwrap(), bound));
            }
        }
        Ok(f)
    }

    /// Serializes to DIMACS CNF (PB constraints are not representable; they
    /// must be empty).
    pub fn to_dimacs(&self) -> String {
        assert!(
            self.pbs.is_empty() && self.minimize.is_none(),
            "DIMACS cannot express PB constraints"
        );
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.n_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let _ = write!(out, "{l} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Serializes to OPB (clauses become `≥ 1` constraints).
    pub fn to_opb(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "* #variable= {} #constraint= {}",
            self.n_vars,
            self.clauses.len() + self.pbs.len()
        );
        let term = |coef: i64, lit: i64| {
            if lit < 0 {
                format!("{:+} ~x{}", coef, -lit)
            } else {
                format!("{coef:+} x{lit}")
            }
        };
        if let Some(obj) = &self.minimize {
            let parts: Vec<String> = obj.iter().map(|&(c, l)| term(c, l)).collect();
            let _ = writeln!(out, "min: {} ;", parts.join(" "));
        }
        for c in &self.clauses {
            let parts: Vec<String> = c.iter().map(|&l| term(1, l)).collect();
            let _ = writeln!(out, "{} >= 1 ;", parts.join(" "));
        }
        for (terms, op, bound) in &self.pbs {
            let parts: Vec<String> = terms.iter().map(|&(c, l)| term(c, l)).collect();
            let op_txt = match op {
                PbOp::Ge => ">=",
                PbOp::Le => "<=",
                PbOp::Eq => "=",
            };
            let _ = writeln!(out, "{} {} {} ;", parts.join(" "), op_txt, bound);
        }
        out
    }

    fn lit(signed: i64) -> Lit {
        let v = Var::from_index(signed.unsigned_abs() as usize - 1);
        v.lit(signed > 0)
    }

    /// Loads the formula into a fresh solver, returning the solver and the
    /// variable handles (index `i` ↔ file variable `i+1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..self.n_vars).map(|_| s.new_var()).collect();
        for c in &self.clauses {
            let lits: Vec<Lit> = c.iter().map(|&l| Self::lit(l)).collect();
            if !s.add_clause(&lits) {
                break;
            }
        }
        for (terms, op, bound) in &self.pbs {
            let pb: Vec<PbTerm> = terms
                .iter()
                .map(|&(c, l)| PbTerm::new(Self::lit(l), c))
                .collect();
            if !s.add_pb(&pb, *op, *bound) {
                break;
            }
        }
        (s, vars)
    }

    /// Evaluates the objective under a model reader (used by the CLI's
    /// minimization loop).
    pub fn objective_value(&self, value_of: impl Fn(i64) -> bool) -> Option<i64> {
        self.minimize.as_ref().map(|obj| {
            obj.iter()
                .map(|&(c, l)| if value_of(l) { c } else { 0 })
                .sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn dimacs_roundtrip_and_solve() {
        let text = "c example\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let f = Formula::parse_dimacs(text).unwrap();
        assert_eq!(f.n_vars, 3);
        assert_eq!(f.clauses.len(), 3);
        let back = Formula::parse_dimacs(&f.to_dimacs()).unwrap();
        assert_eq!(back.clauses, f.clauses);

        let (mut s, _) = f.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn dimacs_unsat_instance() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let f = Formula::parse_dimacs(text).unwrap();
        let (mut s, _) = f.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn dimacs_errors() {
        assert!(Formula::parse_dimacs("1 2 0\n").is_err()); // no header
        assert!(Formula::parse_dimacs("p cnf 1 1\n2 0\n").is_err()); // var range
        assert!(Formula::parse_dimacs("p cnf 2 1\n1 2\n").is_err()); // no 0
    }

    #[test]
    fn opb_parse_and_solve() {
        let text = "\
* #variable= 3 #constraint= 2
min: +1 x1 +1 x2 +1 x3 ;
+2 x1 +1 x2 +1 x3 >= 2 ;
+1 x2 +1 ~x3 <= 1 ;
";
        let f = Formula::parse_opb(text).unwrap();
        assert_eq!(f.n_vars, 3);
        assert_eq!(f.pbs.len(), 2);
        assert!(f.minimize.is_some());
        let (mut s, vars) = f.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Constraint 1 must hold in the model.
        let val = |i: usize| s.model_value(vars[i].positive());
        let sum = 2 * val(0) as i64 + val(1) as i64 + val(2) as i64;
        assert!(sum >= 2);
    }

    #[test]
    fn opb_roundtrip() {
        let text = "min: +2 x1 -1 ~x2 ;\n+3 x1 -2 x2 >= 1 ;\n+1 x1 +1 x2 = 1 ;\n";
        let f = Formula::parse_opb(text).unwrap();
        let back = Formula::parse_opb(&f.to_opb()).unwrap();
        assert_eq!(back.pbs, f.pbs);
        assert_eq!(back.minimize, f.minimize);
    }

    #[test]
    fn opb_errors() {
        assert!(Formula::parse_opb("+1 x1 >= 1\n").is_err()); // missing ;
        assert!(Formula::parse_opb("+1 x1 1 ;\n").is_err()); // no operator
        assert!(Formula::parse_opb("+1 y1 >= 1 ;\n").is_err()); // bad name
    }

    #[test]
    fn objective_value_reads_model() {
        let f = Formula::parse_opb("min: +5 x1 +3 ~x2 ;\n+1 x1 +1 x2 >= 1 ;\n").unwrap();
        let v = f.objective_value(|l| l == 1 || l == -2).unwrap();
        assert_eq!(v, 8); // x1 true (5) + ~x2 true (3)
    }
}
