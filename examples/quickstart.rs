//! Quickstart: find a provably optimal allocation for a small distributed
//! system.
//!
//! Two ECUs on a CAN bus run a three-task control application. We ask the
//! optimizer for the allocation that balances processor load best, print
//! the placement, the message routes, and the response-time report, and
//! show that the result is *optimal*, not merely feasible.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use optalloc::{Objective, Optimizer};
use optalloc_model::{Architecture, Ecu, Medium, Task, TaskId, TaskSet};

fn main() {
    // ---- platform: two ECUs on one CAN bus --------------------------------
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("engine-ctrl"));
    let p1 = arch.push_ecu(Ecu::new("body-ctrl"));
    let _can = arch.push_medium(Medium::priority("can0", vec![p0, p1], 2, 1));

    // ---- application: sensor → filter → actuator chain --------------------
    // Times are integer ticks (the bundled benchmarks use 50 µs ticks).
    let mut tasks = TaskSet::new();
    let filter = TaskId(1);
    let actuator = TaskId(2);
    tasks.push(Task::new("sensor", 100, 60, vec![(p0, 12), (p1, 15)]).sends(filter, 6, 40));
    tasks.push(Task::new("filter", 100, 80, vec![(p0, 25), (p1, 22)]).sends(actuator, 4, 40));
    tasks.push(Task::new("actuator", 100, 100, vec![(p0, 18), (p1, 18)]));

    // ---- optimize ----------------------------------------------------------
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::MaxUtilizationPermille)
        .expect("the system is schedulable");

    println!(
        "optimal max ECU utilization: {:.1}%",
        result.cost as f64 / 10.0
    );
    println!(
        "encoding: {} propositional variables, {} literals, {} SOLVE calls\n",
        result.encode.bool_vars, result.encode.literals, result.solve_calls
    );

    let alloc = &result.solution.allocation;
    for (tid, task) in tasks.iter() {
        let ecu = alloc.ecu_of(tid);
        println!(
            "{:<10} -> {:<12} (priority {}, response time {} ticks, deadline {})",
            task.name,
            arch.ecu(ecu).name,
            alloc.priorities[tid.index()],
            result.solution.report.task_response_times[tid.index()]
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            task.deadline,
        );
    }
    for (mid, msg) in tasks.messages() {
        let route = alloc.route(mid);
        let hops: Vec<String> = route
            .media
            .iter()
            .map(|k| arch.medium(*k).name.clone())
            .collect();
        println!(
            "message {} -> {}: {}",
            tasks.task(mid.sender).name,
            tasks.task(msg.to).name,
            if hops.is_empty() {
                "co-located (no bus)".to_string()
            } else {
                hops.join(" -> ")
            }
        );
    }

    assert!(result.solution.report.is_feasible());
}
