//! **Canonical perf trajectory** — one fixed suite, one JSON file, so every
//! future PR can compare itself against the same baseline.
//!
//! Runs the canonical t12/t20/t30 task-scaling instances (Table-3-style
//! token ring, TRT objective, sequential incremental binary search) with
//! the default solver configuration and **appends** one schema-versioned
//! entry to `results/bench_trajectory.json` — the file is a history, one
//! entry per run, so regressions show up as a trend rather than silently
//! replacing the previous numbers. Each row records wall-clock, conflicts,
//! propagations, peak learnt-clause count, the span-derived phase
//! breakdown (encode / search / certify, see `docs/OBSERVABILITY.md`),
//! plus the per-axis search-engine configuration it ran with. Wall-clock
//! rows keep the minimum over `OPTALLOC_ABLATION_REPS` repetitions
//! (default 3) — counts are deterministic, only the clock is noisy.
//!
//! Environment knobs:
//!
//! - `OPTALLOC_ABLATION_SIZES=12,20` — override the task-count grid;
//! - `OPTALLOC_ABLATION_REPS=3` — wall-clock repetitions per instance;
//! - `--search <engine>` is deliberately absent: the trajectory always
//!   measures the defaults a user gets, axis settings are recorded in the
//!   rows. Use `search_ablation` for per-axis comparisons.

use optalloc::{Objective, Optimizer, RestartPolicy, SearchEngine, SolveOptions};
use optalloc_bench::parse_cli;
use optalloc_model::MediumId;
use optalloc_obs::PhaseTotals;
use optalloc_workloads::task_scaling;
use serde::{Deserialize, Serialize};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Schema tag of entries this binary appends. Bump when the entry or row
/// layout changes incompatibly; readers skip entries they don't know.
const TRAJECTORY_SCHEMA: &str = "optalloc-bench-trajectory-v2";

/// The search-engine axes a row ran with, spelled out per axis so the
/// trajectory stays comparable even if future defaults change.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EngineConfig {
    /// Compact label (`full`, `legacy`, `bin+tier`, ...).
    label: String,
    binary_watches: bool,
    tiered_db: bool,
    /// `luby` or `ema`.
    restart_policy: String,
    vivify: bool,
    /// Bounded variable elimination (absent in pre-elimination rows).
    #[serde(default)]
    elim: bool,
}

impl EngineConfig {
    fn of(engine: &SearchEngine) -> EngineConfig {
        EngineConfig {
            label: engine.label(),
            binary_watches: engine.binary_watches,
            tiered_db: engine.tiered_db,
            restart_policy: match engine.restart {
                RestartPolicy::Luby => "luby".to_string(),
                RestartPolicy::Ema => "ema".to_string(),
            },
            vivify: engine.vivify,
            elim: engine.elim,
        }
    }
}

/// One instance of the canonical suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrajectoryRow {
    instance: String,
    tasks: usize,
    /// Proven optimal TRT in ticks.
    cost: i64,
    conflicts: u64,
    propagations: u64,
    /// High-water mark of retained learned clauses.
    peak_learnts: u64,
    /// Variables removed by bounded variable elimination.
    #[serde(default)]
    elim_vars: u64,
    /// Wall-clock ms inside the SAT search, summed over all `SOLVE` calls.
    solve_ms: f64,
    /// End-to-end wall time of the whole minimization (min over reps).
    time_s: f64,
    /// Span-derived phase breakdown of the fastest repetition (encode /
    /// search / certify ms; `search_ms` equals `solve_ms`).
    #[serde(default)]
    phases: PhaseTotals,
    /// The search-engine configuration this row ran with.
    engine: EngineConfig,
}

/// One appended run of the suite: the trajectory file is a JSON array of
/// these, newest last.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrajectoryEntry {
    /// Entry layout version ([`TRAJECTORY_SCHEMA`]).
    schema: String,
    /// Seconds since the Unix epoch when the suite ran (0 for entries
    /// migrated from the pre-append format).
    recorded_at_unix: u64,
    rows: Vec<TrajectoryRow>,
}

/// Loads the existing trajectory history. The pre-v2 format was a bare
/// row array that every run overwrote; it is migrated in place into a
/// single v1-tagged entry so no history is lost.
fn load_history(text: &str) -> Vec<TrajectoryEntry> {
    if let Ok(entries) = serde_json::from_str::<Vec<TrajectoryEntry>>(text) {
        return entries;
    }
    match serde_json::from_str::<Vec<TrajectoryRow>>(text) {
        Ok(rows) => vec![TrajectoryEntry {
            schema: "optalloc-bench-trajectory-v1".to_string(),
            recorded_at_unix: 0,
            rows,
        }],
        Err(_) => Vec::new(),
    }
}

fn main() {
    let cli = parse_cli();
    let objective = Objective::TokenRotationTime(MediumId(0));
    let default_sizes: &[usize] = &[12, 20, 30];
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    let reps: usize = std::env::var("OPTALLOC_ABLATION_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(3);

    let engine = SearchEngine::full();
    let mut rows: Vec<TrajectoryRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let opts = SolveOptions {
            max_conflicts: if cli.full { None } else { Some(3_000_000) },
            max_slot: if cli.full { 48 } else { 24 },
            search: engine,
            ..Default::default()
        };
        let mut best: Option<(optalloc::OptimizeReport, f64)> = None;
        for _ in 0..reps {
            let start = Instant::now();
            let r = Optimizer::new(&w.arch, &w.tasks)
                .with_options(opts.clone())
                .minimize(&objective)
                .unwrap_or_else(|e| panic!("{n} tasks: {e}"));
            let elapsed = start.elapsed().as_secs_f64();
            if let Some((prev, _)) = &best {
                assert_eq!(
                    (prev.cost, prev.stats.conflicts),
                    (r.cost, r.stats.conflicts),
                    "{n} tasks: nondeterministic search"
                );
            }
            if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
                best = Some((r, elapsed));
            }
        }
        let (r, time_s) = best.expect("reps >= 1");
        let row = TrajectoryRow {
            instance: w.name.clone(),
            tasks: n,
            cost: r.cost,
            conflicts: r.stats.conflicts,
            propagations: r.stats.propagations,
            peak_learnts: r.stats.peak_learnts,
            elim_vars: r.stats.elim_vars,
            solve_ms: r.stats.solve_ms,
            time_s,
            phases: r.phases,
            engine: EngineConfig::of(&engine),
        };
        eprintln!(
            "{n} tasks: TRT = {} | {} conflicts, {} props, peak {} learnts, \
             {} eliminated | solve {:.2}s, total {:.2}s",
            row.cost,
            row.conflicts,
            row.propagations,
            row.peak_learnts,
            row.elim_vars,
            row.solve_ms / 1e3,
            row.time_s
        );
        rows.push(row);
    }

    let entry = TrajectoryEntry {
        schema: TRAJECTORY_SCHEMA.to_string(),
        recorded_at_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        rows,
    };
    let path = match &cli.json {
        Some(path) => path.clone(),
        None => {
            std::fs::create_dir_all("results").expect("create results/");
            std::path::PathBuf::from("results/bench_trajectory.json")
        }
    };
    let mut entries = match std::fs::read_to_string(&path) {
        Ok(text) => load_history(&text),
        Err(_) => Vec::new(),
    };
    entries.push(entry);
    let json = serde_json::to_string_pretty(&entries).expect("entries serialize");
    std::fs::write(&path, &json).expect("write json");
    eprintln!("(entry {} appended to {})", entries.len(), path.display());
}
