//! **Encoder-optimization ablation** — how much does each stage of the
//! encode-and-solve optimization layer shrink the formula and speed up the
//! sequential binary search?
//!
//! Table-3-style instances (token-ring task-set scaling), TRT objective,
//! plain incremental binary search ([`optalloc::Strategy::Single`]) so the
//! measured wall-clock is a true single-core number. Four cumulative stages
//! per instance:
//!
//! - `baseline` — [`EncoderOpt::none`]: the pre-optimization encoder;
//! - `+hash-consing` — structural gate cache and algebraic rewrites in the
//!   blaster;
//! - `+narrowing` — plus forward–backward interval tightening, decided
//!   comparison folding, dead-definition sweeping and truncated adders;
//! - `+preprocess` — plus the SAT solver's level-0 input preprocessing
//!   (the full [`EncoderOpt::default`] configuration).
//!
//! The harness asserts the proven optimum is identical across all stages
//! and reports literal reduction and wall-clock speedup relative to the
//! baseline. Results go to `results/encoding_opt_ablation.{json,txt}` (or
//! the `--json` path).
//!
//! Environment knobs:
//!
//! - `OPTALLOC_ABLATION_SIZES=20,30` — override the task-count grid;
//! - `OPTALLOC_ABLATION_REPS=3` — wall-clock repetitions per stage (the
//!   minimum is reported; conflict counts are deterministic across reps,
//!   only the wall clock is noisy). Default 3 quick, 1 with `--full`;
//! - `OPTALLOC_ENCODER_OPT=0` — (other binaries) run everything unoptimized;
//! - `OPTALLOC_CHECK_REF=<ref.json>` — regression mode: compare this run's
//!   var/lit counts per (tasks, stage) against the committed reference rows
//!   and exit non-zero if any count drifts by more than ±5%. Used by the CI
//!   encoding-size smoke job.

use optalloc::{EncoderOpt, Objective, Optimizer, SolveOptions};
use optalloc_bench::parse_cli;
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One (instance, stage) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OptRow {
    instance: String,
    tasks: usize,
    /// `baseline`, `+hash-consing`, `+narrowing`, or `+preprocess`.
    stage: String,
    /// Proven optimal TRT in ticks (identical across stages — asserted).
    cost: i64,
    vars: u64,
    lits: u64,
    constraints: u64,
    conflicts: u64,
    /// Wall-clock ms spent encoding, summed over all `SOLVE` calls.
    encode_ms: f64,
    /// Wall-clock ms spent inside the SAT search, summed over all calls.
    solve_ms: f64,
    /// End-to-end wall time of the whole minimization.
    time_s: f64,
    /// `100 · (1 − lits / lits(baseline))` for the same instance.
    lit_reduction_pct: f64,
    /// `time_s(baseline) / time_s(this row)` for the same instance.
    speedup_vs_baseline: f64,
}

/// The cumulative stage grid, in measurement order.
fn stages() -> [(&'static str, EncoderOpt); 4] {
    let none = EncoderOpt::none();
    [
        ("baseline", none),
        (
            "+hash-consing",
            EncoderOpt {
                hash_consing: true,
                ..none
            },
        ),
        (
            "+narrowing",
            EncoderOpt {
                hash_consing: true,
                narrowing: true,
                ..none
            },
        ),
        ("+preprocess", EncoderOpt::default()),
    ]
}

fn render(rows: &[OptRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>14} {:>8} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9} {:>8}\n",
        "instance",
        "stage",
        "cost",
        "vars",
        "lits",
        "constr",
        "conflicts",
        "encode_ms",
        "solve_s",
        "lits_red%",
        "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>14} {:>8} {:>9} {:>10} {:>10} {:>10} {:>10.1} {:>8.2} {:>9.1} {:>7.2}x\n",
            r.instance,
            r.stage,
            r.cost,
            r.vars,
            r.lits,
            r.constraints,
            r.conflicts,
            r.encode_ms,
            r.solve_ms / 1e3,
            r.lit_reduction_pct,
            r.speedup_vs_baseline
        ));
    }
    out
}

/// Regression mode: every (tasks, stage) row present in the reference must
/// match this run's var/lit counts within ±5%.
fn check_reference(rows: &[OptRow], ref_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(ref_path)
        .map_err(|e| format!("cannot read reference {ref_path}: {e}"))?;
    let reference: Vec<OptRow> =
        serde_json::from_str(&text).map_err(|e| format!("bad reference {ref_path}: {e}"))?;
    let within = |now: u64, reference: u64| {
        let lo = reference as f64 * 0.95;
        let hi = reference as f64 * 1.05;
        (lo..=hi).contains(&(now as f64))
    };
    let mut failures = Vec::new();
    let mut checked = 0;
    for r in &reference {
        let Some(now) = rows
            .iter()
            .find(|x| x.tasks == r.tasks && x.stage == r.stage)
        else {
            failures.push(format!("missing row: {} tasks, {}", r.tasks, r.stage));
            continue;
        };
        checked += 1;
        if !within(now.vars, r.vars) {
            failures.push(format!(
                "{} tasks, {}: vars {} vs reference {} (> ±5%)",
                r.tasks, r.stage, now.vars, r.vars
            ));
        }
        if !within(now.lits, r.lits) {
            failures.push(format!(
                "{} tasks, {}: lits {} vs reference {} (> ±5%)",
                r.tasks, r.stage, now.lits, r.lits
            ));
        }
    }
    if checked == 0 {
        failures.push(format!("no comparable rows in {ref_path}"));
    }
    if failures.is_empty() {
        eprintln!("encoding-size check: {checked} rows within ±5% of {ref_path}");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let cli = parse_cli();
    let objective = Objective::TokenRotationTime(MediumId(0));
    let default_sizes: &[usize] = if cli.full { &[20, 30, 43] } else { &[20, 30] };
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    let reps: usize = std::env::var("OPTALLOC_ABLATION_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&r| r >= 1)
        .unwrap_or(if cli.full { 1 } else { 3 });

    let mut rows: Vec<OptRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let mut baseline: Option<(i64, u64, f64)> = None; // (cost, lits, time)
        for (stage, encoder_opt) in stages() {
            let opts = SolveOptions {
                max_conflicts: if cli.full { None } else { Some(3_000_000) },
                max_slot: if cli.full { 48 } else { 24 },
                encoder_opt,
                ..Default::default()
            };
            // The search is deterministic — conflicts and optimum repeat
            // exactly — so repetitions only de-noise the wall clock; keep
            // the fastest.
            let mut best: Option<(optalloc::OptimizeReport, f64)> = None;
            for _ in 0..reps {
                let start = Instant::now();
                let r = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(opts.clone())
                    .minimize(&objective)
                    .unwrap_or_else(|e| panic!("{n} tasks, {stage}: {e}"));
                let elapsed = start.elapsed().as_secs_f64();
                if let Some((prev, _)) = &best {
                    assert_eq!(
                        prev.cost, r.cost,
                        "{n} tasks, {stage}: nondeterministic cost"
                    );
                }
                if best.as_ref().is_none_or(|(_, t)| elapsed < *t) {
                    best = Some((r, elapsed));
                }
            }
            let (r, time_s) = best.expect("reps >= 1");
            let (base_cost, base_lits, base_time) =
                *baseline.get_or_insert((r.cost, r.encode.literals, time_s));
            assert_eq!(
                r.cost, base_cost,
                "{n} tasks: {stage} optimum diverged from the baseline encoder"
            );
            let row = OptRow {
                instance: w.name.clone(),
                tasks: n,
                stage: stage.to_string(),
                cost: r.cost,
                vars: r.encode.bool_vars,
                lits: r.encode.literals,
                constraints: r.encode.constraints,
                conflicts: r.stats.conflicts,
                encode_ms: r.encode.encode_ms,
                solve_ms: r.stats.solve_ms,
                time_s,
                lit_reduction_pct: 100.0 * (1.0 - r.encode.literals as f64 / base_lits as f64),
                speedup_vs_baseline: base_time / time_s,
            };
            eprintln!(
                "{n} tasks, {stage}: TRT = {} | {} vars, {} lits, {} conflicts | \
                 encode {:.1}ms, solve {:.2}s, total {:.2}s ({:.1}% fewer lits, {:.2}x)",
                row.cost,
                row.vars,
                row.lits,
                row.conflicts,
                row.encode_ms,
                row.solve_ms / 1e3,
                row.time_s,
                row.lit_reduction_pct,
                row.speedup_vs_baseline
            );
            rows.push(row);
        }
    }

    let table = render(&rows);
    println!("\n== encoder-optimization ablation (identical optima asserted) ==");
    print!("{table}");

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    if let Some(path) = &cli.json {
        std::fs::write(path, &json).expect("write json");
        eprintln!("(rows written to {})", path.display());
    } else if std::fs::create_dir_all("results").is_ok() {
        std::fs::write("results/encoding_opt_ablation.json", &json).expect("write json");
        std::fs::write("results/encoding_opt_ablation.txt", &table).expect("write txt");
        eprintln!("(rows written to results/encoding_opt_ablation.{{json,txt}})");
    }

    if let Ok(ref_path) = std::env::var("OPTALLOC_CHECK_REF") {
        if let Err(msg) = check_reference(&rows, &ref_path) {
            eprintln!("encoding-size check FAILED:\n{msg}");
            std::process::exit(1);
        }
    }
}
